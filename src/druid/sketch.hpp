// In-buffer sketches (§6).
//
// "Complex aggregates (e.g., unique count and quantiles) are embodied
//  through sketches — compact data structures for approximate statistical
//  queries."
//
// Both sketches operate directly on a caller-provided byte region so they
// can live inside an Oak value and be updated in-situ by a compute lambda —
// that is the whole point of the I2-Oak write path.  Layouts are flat and
// fixed-size.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/bytes.hpp"

namespace oak::druid {

/// 64-bit mix (splitmix64 finalizer) used by both sketches.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// HyperLogLog unique-count sketch: 2^P single-byte registers, flat layout.
/// A stand-in for DataSketches' HLL with the standard bias-corrected
/// estimator (good to a few percent at P=9).
class HllSketch {
 public:
  static constexpr unsigned kP = 9;
  static constexpr std::size_t kRegisters = 1u << kP;
  static constexpr std::size_t kBytes = kRegisters;

  static void init(MutByteSpan region) noexcept {
    for (std::size_t i = 0; i < kBytes; ++i) region[i] = std::byte{0};
  }

  /// Folds one item (pre-hashed) into the register file.
  static void update(MutByteSpan region, std::uint64_t hash) noexcept {
    hash = mix64(hash);
    const std::size_t reg = hash >> (64 - kP);
    const std::uint64_t rest = hash << kP;
    const auto rank = static_cast<std::uint8_t>(
        rest == 0 ? (64 - kP + 1) : (std::countl_zero(rest) + 1));
    auto cur = static_cast<std::uint8_t>(region[reg]);
    if (rank > cur) region[reg] = static_cast<std::byte>(rank);
  }

  static double estimate(ByteSpan region) noexcept {
    const double m = static_cast<double>(kRegisters);
    double sum = 0;
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < kRegisters; ++i) {
      const auto r = static_cast<std::uint8_t>(region[i]);
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double e = alpha * m * m / sum;
    if (e <= 2.5 * m && zeros != 0) {
      e = m * std::log(m / static_cast<double>(zeros));  // linear counting
    }
    return e;
  }
};

/// Uniform reservoir sampler over doubles for approximate quantiles.
/// Layout: [count u64][samples: kK doubles] — flat, fixed-size.
class QuantileSketch {
 public:
  static constexpr std::size_t kK = 64;
  static constexpr std::size_t kBytes = 8 + kK * 8;

  static void init(MutByteSpan region) noexcept {
    storeUnaligned<std::uint64_t>(region.data(), 0);
  }

  static void update(MutByteSpan region, double v) noexcept {
    std::uint64_t n = loadUnaligned<std::uint64_t>(region.data());
    if (n < kK) {
      storeUnaligned(region.data() + 8 + n * 8, v);
    } else {
      // Vitter's algorithm R: replace a random slot with probability kK/n.
      const std::uint64_t r =
          mix64(n * 0x9e3779b97f4a7c15ull ^ std::bit_cast<std::uint64_t>(v)) % (n + 1);
      if (r < kK) storeUnaligned(region.data() + 8 + r * 8, v);
    }
    storeUnaligned<std::uint64_t>(region.data(), n + 1);
  }

  static std::uint64_t count(ByteSpan region) noexcept {
    return loadUnaligned<std::uint64_t>(region.data());
  }

  /// Approximate q-quantile (q in [0,1]) from the reservoir.
  static double quantile(ByteSpan region, double q) noexcept {
    const std::uint64_t n = count(region);
    const std::size_t k = n < kK ? static_cast<std::size_t>(n) : kK;
    if (k == 0) return 0.0;
    double buf[kK];
    for (std::size_t i = 0; i < k; ++i) {
      buf[i] = loadUnaligned<double>(region.data() + 8 + i * 8);
    }
    // insertion sort: k <= 64
    for (std::size_t i = 1; i < k; ++i) {
      const double x = buf[i];
      std::size_t j = i;
      while (j > 0 && buf[j - 1] > x) {
        buf[j] = buf[j - 1];
        --j;
      }
      buf[j] = x;
    }
    auto idx = static_cast<std::size_t>(q * static_cast<double>(k - 1) + 0.5);
    if (idx >= k) idx = k - 1;
    return buf[idx];
  }
};

}  // namespace oak::druid
