// Rollup aggregator columns (§6).
//
// In a rollup I2, values are "materialized aggregate functions": numeric
// counters plus sketches.  An AggregatorSpec describes the flat value
// layout; init() materializes a row from the first tuple and fold() merges
// another tuple in place.  fold() is exactly what I2-Oak passes to
// putIfAbsentComputeIfPresent — "atomic update of multiple aggregates
// within a single lambda".
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "druid/sketch.hpp"

namespace oak::druid {

enum class AggType : std::uint8_t {
  Count,      ///< 8 B: number of folded tuples
  LongSum,    ///< 8 B
  DoubleSum,  ///< 8 B
  DoubleMin,  ///< 8 B
  DoubleMax,  ///< 8 B
  HllUnique,  ///< HllSketch::kBytes: approximate distinct count
  Quantiles,  ///< QuantileSketch::kBytes: approximate quantiles
};

inline std::size_t aggBytes(AggType t) noexcept {
  switch (t) {
    case AggType::HllUnique:
      return HllSketch::kBytes;
    case AggType::Quantiles:
      return QuantileSketch::kBytes;
    default:
      return 8;
  }
}

/// One measurement column of an incoming tuple.  Numeric aggregates consume
/// `number`; HllUnique consumes `hash64`.
struct MetricValue {
  double number = 0;
  std::uint64_t hash64 = 0;
};

class AggregatorSpec {
 public:
  AggregatorSpec() = default;
  explicit AggregatorSpec(std::vector<AggType> aggs) : aggs_(std::move(aggs)) {
    offsets_.reserve(aggs_.size());
    std::size_t off = 0;
    for (AggType t : aggs_) {
      offsets_.push_back(off);
      off += aggBytes(t);
    }
    rowBytes_ = off;
  }

  std::size_t rowBytes() const noexcept { return rowBytes_; }
  std::size_t columnCount() const noexcept { return aggs_.size(); }
  AggType type(std::size_t i) const noexcept { return aggs_[i]; }
  std::size_t offset(std::size_t i) const noexcept { return offsets_[i]; }

  /// Materializes one column from the first tuple.
  void initColumn(MutByteSpan col, std::size_t i,
                  const MetricValue* metrics) const noexcept {
    switch (aggs_[i]) {
      case AggType::Count:
        storeUnaligned<std::uint64_t>(col.data(), 1);
        break;
      case AggType::LongSum:
        storeUnaligned<std::int64_t>(col.data(),
                                     static_cast<std::int64_t>(metrics[i].number));
        break;
      case AggType::DoubleSum:
      case AggType::DoubleMin:
      case AggType::DoubleMax:
        storeUnaligned<double>(col.data(), metrics[i].number);
        break;
      case AggType::HllUnique:
        HllSketch::init(col);
        HllSketch::update(col, metrics[i].hash64);
        break;
      case AggType::Quantiles:
        QuantileSketch::init(col);
        QuantileSketch::update(col, metrics[i].number);
        break;
    }
  }

  /// Folds one tuple's column into an existing column, in place.
  void foldColumn(MutByteSpan col, std::size_t i,
                  const MetricValue* metrics) const noexcept {
    switch (aggs_[i]) {
      case AggType::Count:
        storeUnaligned<std::uint64_t>(
            col.data(), loadUnaligned<std::uint64_t>(col.data()) + 1);
        break;
      case AggType::LongSum:
        storeUnaligned<std::int64_t>(
            col.data(), loadUnaligned<std::int64_t>(col.data()) +
                            static_cast<std::int64_t>(metrics[i].number));
        break;
      case AggType::DoubleSum:
        storeUnaligned<double>(col.data(),
                               loadUnaligned<double>(col.data()) + metrics[i].number);
        break;
      case AggType::DoubleMin:
        storeUnaligned<double>(
            col.data(), std::min(loadUnaligned<double>(col.data()), metrics[i].number));
        break;
      case AggType::DoubleMax:
        storeUnaligned<double>(
            col.data(), std::max(loadUnaligned<double>(col.data()), metrics[i].number));
        break;
      case AggType::HllUnique:
        HllSketch::update(col, metrics[i].hash64);
        break;
      case AggType::Quantiles:
        QuantileSketch::update(col, metrics[i].number);
        break;
    }
  }

  /// Materializes a fresh (flat) row from the first tuple.
  void init(MutByteSpan row, const MetricValue* metrics) const noexcept {
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
      initColumn(row.subspan(offsets_[i], aggBytes(aggs_[i])), i, metrics);
    }
  }

  /// Folds another tuple into an existing flat row, in place.
  void fold(MutByteSpan row, const MetricValue* metrics) const noexcept {
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
      foldColumn(row.subspan(offsets_[i], aggBytes(aggs_[i])), i, metrics);
    }
  }

  // ------------------------------------------------------------ readers
  std::uint64_t readCount(ByteSpan row, std::size_t i) const noexcept {
    return loadUnaligned<std::uint64_t>(row.data() + offsets_[i]);
  }
  std::int64_t readLongSum(ByteSpan row, std::size_t i) const noexcept {
    return loadUnaligned<std::int64_t>(row.data() + offsets_[i]);
  }
  double readDouble(ByteSpan row, std::size_t i) const noexcept {
    return loadUnaligned<double>(row.data() + offsets_[i]);
  }
  double readHllEstimate(ByteSpan row, std::size_t i) const noexcept {
    return HllSketch::estimate(row.subspan(offsets_[i], HllSketch::kBytes));
  }
  double readQuantile(ByteSpan row, std::size_t i, double q) const noexcept {
    return QuantileSketch::quantile(row.subspan(offsets_[i], QuantileSketch::kBytes), q);
  }

 private:
  std::vector<AggType> aggs_;
  std::vector<std::size_t> offsets_;
  std::size_t rowBytes_ = 0;
};

}  // namespace oak::druid
