// String-dimension dictionaries (§6).
//
// "In order to save space, variable-size (e.g., string) dimensions are
//  mapped to numeric codewords, through auxiliary dynamic dictionaries."
//
// The dictionaries are auxiliary on-heap structures in both I2 variants
// ("the auxiliary data structures remain on-heap"), so their storage is
// charged to the simulated managed heap.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "mheap/managed_heap.hpp"

namespace oak::druid {

class Dictionary {
 public:
  explicit Dictionary(mheap::ManagedHeap& heap) : heap_(heap) {}
  ~Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the code for `s`, assigning the next code on first sight.
  std::int32_t encode(std::string_view s);

  /// Code -> string; returns empty view for unknown codes.
  std::string_view decode(std::int32_t code) const;

  std::size_t size() const;

 private:
  mheap::ManagedHeap& heap_;
  mutable Mutex mu_;
  std::unordered_map<std::string_view, std::int32_t> codes_ OAK_GUARDED_BY(mu_);
  /// Managed copies, code-indexed.
  std::vector<mheap::ManagedBytes*> strings_ OAK_GUARDED_BY(mu_);
};

}  // namespace oak::druid
