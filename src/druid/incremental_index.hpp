// Druid's Incremental Index (I²) rebuilt over a pluggable KV backend (§6).
//
// "For every incoming data tuple, I2 updates its internal KV-map, creating
//  a new pair if the tuple's key is absent, or updating in-situ otherwise."
//
// Keys are multi-dimensional: time is always the primary dimension,
// followed by dictionary-encoded string dimensions — serialized big-endian
// so plain byte comparison yields (time, dims) lexicographic order.
//
// Two backends reproduce the paper's comparison:
//   * OakIndexBackend    (I2-Oak):    off-heap rows; the write path uses
//     putIfAbsentComputeIfPresent to fold all aggregates atomically in one
//     lambda; reads are facades over Oak buffers.
//   * LegacyIndexBackend (I2-legacy): the JDK-skiplist design — rows are
//     managed heap objects updated in place under a per-row lock, with all
//     the object-count and GC consequences.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/spin.hpp"
#include "druid/aggregator.hpp"
#include "druid/dictionary.hpp"
#include "mheap/managed_heap.hpp"
#include "oak/core_map.hpp"
#include "skiplist/skiplist.hpp"

namespace oak::druid {

/// One incoming tuple: timestamp, string dimensions, measurement columns
/// (one MetricValue per aggregator column in the spec).
struct TupleIn {
  std::int64_t timestamp = 0;
  std::vector<std::string_view> dims;
  std::vector<MetricValue> metrics;
};

// ===================================================== I2-Oak backend ==
class OakIndexBackend {
 public:
  OakIndexBackend(const AggregatorSpec& spec, OakConfig cfg)
      : spec_(&spec), map_(cfg) {}

  void upsert(ByteSpan key, const MetricValue* metrics) {
    // One facade/tuple object per add on the Oak write path (§6).
    map_.metaHeap().ephemeralObject(48);
    thread_local ByteVec initial;
    initial.resize(spec_->rowBytes());
    spec_->init(MutByteSpan{initial.data(), initial.size()}, metrics);
    map_.putIfAbsentComputeIfPresent(
        key, asBytes(initial), [this, metrics](OakWBuffer& w) {
          spec_->fold(w.mutableSpan(), metrics);
        });
  }

  void insertUnique(ByteSpan key, ByteSpan row) { map_.putIfAbsent(key, row); }

  /// f(ByteSpan key, ByteSpan row) over [loKey, hiKey) in time order.
  /// Rows are read through the ZC API (facade tuples, §6 read path).
  template <class F>
  std::size_t scan(std::optional<ByteVec> lo, std::optional<ByteVec> hi, F&& f) {
    std::size_t n = 0;
    for (auto it = map_.ascend(std::move(lo), std::move(hi), ScanOptions::streaming());
         it.valid(); it.next()) {
      auto e = it.entry();
      e.value.read([&](ByteSpan row) { f(e.key, row); });
      ++n;
    }
    return n;
  }

  std::size_t rowCount() { return map_.sizeSlow(); }
  std::size_t offHeapBytes() const { return map_.offHeapFootprintBytes(); }
  OakCoreMap<>& map() { return map_; }

  static constexpr const char* kName = "I^2-Oak";

 private:
  const AggregatorSpec* spec_;
  OakCoreMap<> map_;
};

// ================================================== I2-legacy backend ==
//
// Faithful to legacy Druid's on-heap object model: every row is a Java
// object holding one *aggregator object per column* (counters are small
// objects; sketches are objects wrapping their own register arrays), all
// updated in place under a per-row lock.  Each ingested tuple additionally
// creates short-lived objects (TimeAndDims, dim arrays, boxing) — the
// young-generation churn that, together with the large live-object
// population, is what the paper's Figure 5 measures against I^2-Oak.
class LegacyIndexBackend {
  using MB = mheap::ManagedBytes;

  /// A row object on the managed heap referencing per-column aggregator
  /// objects (the flexible tail holds the column pointers).  The alignas
  /// keeps sizeof(Row) a multiple of the pointer size so the tail that
  /// cols() hands out is suitably aligned for MB* stores.
  struct alignas(alignof(MB*)) Row {
    SpinLock lock;
    MB** cols() noexcept { return reinterpret_cast<MB**>(this + 1); }
  };

  struct Cmp {
    int operator()(MB* const& a, ByteSpan b) const noexcept {
      return compareBytes({a->data(), a->size()}, b);
    }
    int operator()(MB* const& a, MB* const& b) const noexcept {
      return compareBytes({a->data(), a->size()}, {b->data(), b->size()});
    }
  };
  using List = sl::SkipList<MB*, Row*, Cmp>;

  /// Java objects per ingested tuple on the legacy write path
  /// (TimeAndDims, its dims array, iterator/boxing garbage).
  static constexpr int kEphemeralsPerAdd = 3;

 public:
  LegacyIndexBackend(const AggregatorSpec& spec, mheap::ManagedHeap& heap)
      : spec_(&spec), heap_(heap), nodeMem_(heap), list_(Cmp{}, nodeMem_) {}

  ~LegacyIndexBackend() {
    for (auto* n = list_.firstNode(); n != nullptr; n = list_.nextNode(n)) {
      disposeRow(n->loadValue());
      MB::dispose(heap_, n->key);
    }
  }

  void upsert(ByteSpan key, const MetricValue* metrics) {
    for (int i = 0; i < kEphemeralsPerAdd; ++i) heap_.ephemeralObject(48);
    typename List::Node* node = list_.getNode(key);
    if (node == nullptr) {
      Row* row = makeRow(metrics);
      MB* kObj = MB::make(heap_, key.data(), key.size());
      typename List::Node* existing = list_.putIfAbsentNode(kObj, row);
      if (existing == nullptr) return;
      // Lost the insert race: fold into the winner instead.
      disposeRow(row);
      MB::dispose(heap_, kObj);
      node = existing;
    }
    Row* row = node->loadValue();
    SpinGuard lk(row->lock);
    for (std::size_t i = 0; i < spec_->columnCount(); ++i) {
      MB* col = row->cols()[i];
      spec_->foldColumn(MutByteSpan{col->data(), col->size()}, i, metrics);
    }
  }

  void insertUnique(ByteSpan key, ByteSpan rowBytes) {
    Row* row = allocRowShell();
    for (std::size_t i = 0; i < spec_->columnCount(); ++i) {
      const std::size_t n = aggBytes(spec_->type(i));
      row->cols()[i] =
          MB::make(heap_, rowBytes.data() + spec_->offset(i), n);
    }
    MB* kObj = MB::make(heap_, key.data(), key.size());
    if (list_.putIfAbsentNode(kObj, row) != nullptr) {
      disposeRow(row);
      MB::dispose(heap_, kObj);
    }
  }

  template <class F>
  std::size_t scan(std::optional<ByteVec> lo, std::optional<ByteVec> hi, F&& f) {
    // Legacy reads materialize a flat view of the per-column objects.
    ByteVec flat(spec_->rowBytes());
    std::size_t n = 0;
    auto* node = lo ? list_.ceilingNode(asBytes(*lo)) : list_.firstNode();
    while (node != nullptr) {
      const ByteSpan k{node->key->data(), node->key->size()};
      if (hi && compareBytes(k, asBytes(*hi)) >= 0) break;
      Row* row = node->loadValue();
      if (row != nullptr) {
        SpinGuard lk(row->lock);
        for (std::size_t i = 0; i < spec_->columnCount(); ++i) {
          const MB* col = row->cols()[i];
          copyBytes({flat.data() + spec_->offset(i), col->size()},
                    {col->data(), col->size()});
        }
        f(k, asBytes(flat));
        ++n;
      }
      node = list_.nextNode(node);
    }
    return n;
  }

  std::size_t rowCount() { return list_.sizeApprox(); }
  std::size_t offHeapBytes() const { return 0; }

  static constexpr const char* kName = "I^2-legacy";

 private:
  Row* allocRowShell() {
    auto* row = static_cast<Row*>(
        heap_.alloc(sizeof(Row) + spec_->columnCount() * sizeof(MB*)));
    new (row) Row();
    return row;
  }

  Row* makeRow(const MetricValue* metrics) {
    Row* row = allocRowShell();
    for (std::size_t i = 0; i < spec_->columnCount(); ++i) {
      const std::size_t n = aggBytes(spec_->type(i));
      MB* col = MB::make(heap_, nullptr, n);
      spec_->initColumn(MutByteSpan{col->data(), n}, i, metrics);
      row->cols()[i] = col;
    }
    return row;
  }

  void disposeRow(Row* row) noexcept {
    if (row == nullptr) return;
    for (std::size_t i = 0; i < spec_->columnCount(); ++i) {
      MB::dispose(heap_, row->cols()[i]);
    }
    heap_.free(row);
  }

  const AggregatorSpec* spec_;
  mheap::ManagedHeap& heap_;
  sl::ManagedMem nodeMem_;
  List list_;
};

// ================================================== the incremental index
template <class Backend>
class IncrementalIndex {
 public:
  /// `dimCount` string dimensions after the timestamp; `rollup` folds
  /// duplicate keys (plain indexes keep every tuple as its own row).
  template <class... BackendArgs>
  IncrementalIndex(AggregatorSpec spec, std::size_t dimCount, bool rollup,
                   mheap::ManagedHeap& heap, BackendArgs&&... args)
      : spec_(std::move(spec)),
        rollup_(rollup),
        heap_(heap),
        backend_(spec_, std::forward<BackendArgs>(args)...) {
    dicts_.reserve(dimCount);
    for (std::size_t i = 0; i < dimCount; ++i) {
      dicts_.push_back(std::make_unique<Dictionary>(heap));
    }
  }

  void add(const TupleIn& t) {
    thread_local ByteVec key;
    buildKey(t, key);
    if (rollup_) {
      backend_.upsert(asBytes(key), t.metrics.data());
    } else {
      // Plain index: every tuple is a distinct row; disambiguate with a
      // per-index sequence number appended to the key (Druid's rowIndex).
      const std::uint64_t seq = plainSeq_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t base = key.size();
      key.resize(base + 8);
      storeU64BE(key.data() + base, seq);
      thread_local ByteVec row;
      row.resize(spec_.rowBytes());
      spec_.init(MutByteSpan{row.data(), row.size()}, t.metrics.data());
      backend_.insertUnique(asBytes(key), asBytes(row));
    }
    tuples_.fetch_add(1, std::memory_order_relaxed);
    rawBytes_.fetch_add(key.size() + spec_.rowBytes(), std::memory_order_relaxed);
  }

  /// Scans rows whose timestamp lies in [tsLo, tsHi).
  template <class F>
  std::size_t scanTimeRange(std::int64_t tsLo, std::int64_t tsHi, F&& f) {
    ByteVec lo(8), hi(8);
    storeU64BE(lo.data(), static_cast<std::uint64_t>(tsLo) ^ (1ull << 63));
    storeU64BE(hi.data(), static_cast<std::uint64_t>(tsHi) ^ (1ull << 63));
    return backend_.scan(lo, hi, std::forward<F>(f));
  }

  template <class F>
  std::size_t scanAll(F&& f) {
    return backend_.scan(std::nullopt, std::nullopt, std::forward<F>(f));
  }

  // ------------------------------------------------------------- stats
  std::uint64_t tuplesAdded() const { return tuples_.load(std::memory_order_relaxed); }
  std::uint64_t rawDataBytes() const { return rawBytes_.load(std::memory_order_relaxed); }
  std::size_t rowCount() { return backend_.rowCount(); }
  std::size_t offHeapBytes() const { return backend_.offHeapBytes(); }

  const AggregatorSpec& spec() const { return spec_; }
  Dictionary& dictionary(std::size_t dim) { return *dicts_[dim]; }
  Backend& backend() { return backend_; }

  /// Decodes the timestamp / a dimension code out of a serialized row key.
  static std::int64_t keyTimestamp(ByteSpan key) {
    return static_cast<std::int64_t>(loadU64BE(key.data()) ^ (1ull << 63));
  }
  static std::int32_t keyDimCode(ByteSpan key, std::size_t dim) {
    return static_cast<std::int32_t>(loadU32BE(key.data() + 8 + dim * 4));
  }

 private:
  void buildKey(const TupleIn& t, ByteVec& out) {
    out.resize(8 + t.dims.size() * 4);
    // Sign-flip keeps negative timestamps ordered under byte comparison.
    storeU64BE(out.data(), static_cast<std::uint64_t>(t.timestamp) ^ (1ull << 63));
    for (std::size_t d = 0; d < t.dims.size(); ++d) {
      const std::int32_t code = dicts_[d]->encode(t.dims[d]);
      storeU32BE(out.data() + 8 + d * 4, static_cast<std::uint32_t>(code));
    }
  }

  AggregatorSpec spec_;
  bool rollup_;
  mheap::ManagedHeap& heap_;
  std::vector<std::unique_ptr<Dictionary>> dicts_;
  Backend backend_;
  std::atomic<std::uint64_t> tuples_{0};
  std::atomic<std::uint64_t> rawBytes_{0};
  std::atomic<std::uint64_t> plainSeq_{0};
};

using OakIncrementalIndex = IncrementalIndex<OakIndexBackend>;
using LegacyIncrementalIndex = IncrementalIndex<LegacyIndexBackend>;

}  // namespace oak::druid
