#include "druid/dictionary.hpp"

namespace oak::druid {

Dictionary::~Dictionary() {
  MutexLock lk(mu_);  // destructor is exclusive, but keeps the analysis exact
  for (auto* s : strings_) mheap::ManagedBytes::dispose(heap_, s);
}

std::int32_t Dictionary::encode(std::string_view s) {
  MutexLock lk(mu_);
  auto it = codes_.find(s);
  if (it != codes_.end()) return it->second;
  auto* copy = mheap::ManagedBytes::make(
      heap_, reinterpret_cast<const std::byte*>(s.data()), s.size());
  const auto code = static_cast<std::int32_t>(strings_.size());
  strings_.push_back(copy);
  // The map key views into the managed copy, which lives as long as we do.
  codes_.emplace(
      std::string_view(reinterpret_cast<const char*>(copy->data()), copy->size()),
      code);
  return code;
}

std::string_view Dictionary::decode(std::int32_t code) const {
  MutexLock lk(mu_);
  if (code < 0 || static_cast<std::size_t>(code) >= strings_.size()) return {};
  const auto* s = strings_[static_cast<std::size_t>(code)];
  return {reinterpret_cast<const char*>(s->data()), s->size()};
}

std::size_t Dictionary::size() const {
  MutexLock lk(mu_);
  return strings_.size();
}

}  // namespace oak::druid
