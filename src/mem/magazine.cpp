#include "mem/magazine.hpp"

#include <new>

#include "common/checked.hpp"

namespace oak::mem {

// The global stacks are intrusive: a cached segment's payload holds the
// bits of the next cached Ref in its first 8 bytes.  Pushes are lock-free
// (a pusher only ever writes the link of its own, not-yet-published node).
// Pops serialize per class behind a tiny spinlock: while the lock is held
// nothing can *remove* the top node, so reading its link word can never
// race the segment being recycled and rewritten by a new owner — the
// failure mode that makes fully lock-free inline-linked pops unsound
// under TSan and ABA.  Pop contention is negligible by construction: the
// magazines absorb the per-op traffic and reach the stacks only in
// refill/flush batches.

MagazineDepot::~MagazineDepot() {
  for (auto& slot : perThread_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

std::uint64_t* MagazineDepot::linkWord(Ref seg) const noexcept {
  std::byte* base = bases_[seg.block()].load(std::memory_order_acquire);
  return reinterpret_cast<std::uint64_t*>(base + seg.offset() + headerBytes_);
}

void MagazineDepot::pushGlobal(Ref seg, std::uint32_t cls) {
  GlobalStack& g = global_[cls];
  std::uint64_t* link = linkWord(seg);
  // The link word stays unpoisoned for as long as the segment sits on the
  // stack; the other classBytes-8 payload bytes keep trapping under ASan.
  OAK_ASAN_UNPOISON(link, sizeof(std::uint64_t));
  std::atomic_ref<std::uint64_t> l(*link);
  std::uint64_t head = g.head.load(std::memory_order_acquire);
  do {
    l.store(head, std::memory_order_relaxed);
  } while (!g.head.compare_exchange_weak(head, seg.bits(),
                                         std::memory_order_release,
                                         std::memory_order_acquire));
  g.count.fetch_add(1, std::memory_order_relaxed);
}

Ref MagazineDepot::popGlobalOne(std::uint32_t cls) noexcept {
  GlobalStack& g = global_[cls];
  if (g.head.load(std::memory_order_relaxed) == 0) return Ref{};  // fast empty
  SpinGuard lk(g.popMu);
  std::uint64_t head = g.head.load(std::memory_order_acquire);
  for (;;) {
    if (head == 0) return Ref{};
    const Ref top{head};
    std::uint64_t* link = linkWord(top);
    OAK_ASAN_UNPOISON(link, sizeof(std::uint64_t));
    const std::uint64_t next =
        std::atomic_ref<std::uint64_t>(*link).load(std::memory_order_relaxed);
    // Only a concurrent push can move the head while we hold popMu_; a
    // failed CAS just means a fresher top to retry on.
    if (g.head.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      OAK_ASAN_POISON(link, sizeof(std::uint64_t));  // cached invariant restored
      g.count.fetch_sub(1, std::memory_order_relaxed);
      return top;
    }
  }
}

MagazineDepot::ThreadMags* MagazineDepot::magsOfOrCreate(std::uint32_t tid) {
  ThreadMags* tm = perThread_[tid].load(std::memory_order_acquire);
  if (tm != nullptr) return tm;
  // nothrow: a host-memory hiccup here must not leak the segment the
  // caller is holding — it just degrades to the global stack.
  ThreadMags* fresh = new (std::nothrow) ThreadMags();
  if (fresh == nullptr) return nullptr;
  ThreadMags* expected = nullptr;
  if (perThread_[tid].compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;
  return expected;
}

Ref MagazineDepot::popLocal(std::uint32_t cls, std::uint32_t tid) noexcept {
  ThreadMags* tm = magsOf(tid);
  if (tm == nullptr) return Ref{};
  Magazine& m = tm->mags[cls];
  SpinGuard lk(m.mu);
  const std::uint32_t n = m.n.load(std::memory_order_relaxed);
  if (n == 0) return Ref{};
  const Ref r = m.slots[n - 1];
  m.n.store(n - 1, std::memory_order_release);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Ref MagazineDepot::popGlobal(std::uint32_t cls, std::uint32_t tid) {
  const Ref first = popGlobalOne(cls);
  if (first.isNull()) return first;
  globalHits_.fetch_add(1, std::memory_order_relaxed);
  // Refill: move a small batch into the caller's magazine so its next
  // allocations of this class stay entirely thread-local.
  if (ThreadMags* tm = magsOfOrCreate(tid)) {
    Magazine& m = tm->mags[cls];
    SpinGuard lk(m.mu);
    std::uint32_t n = m.n.load(std::memory_order_relaxed);
    for (std::uint32_t i = 1; i < kRefillBatch && n < kMagazineCapacity; ++i) {
      const Ref extra = popGlobalOne(cls);
      if (extra.isNull()) break;
      m.slots[n++] = extra;
    }
    m.n.store(n, std::memory_order_release);
  }
  return first;
}

void MagazineDepot::flushLocked(Magazine& m, std::uint32_t cls, std::uint32_t k) {
  std::uint32_t n = m.n.load(std::memory_order_relaxed);
  if (k > n) k = n;
  // Oldest first: the bottom of the stack is the coldest cache content.
  for (std::uint32_t i = 0; i < k; ++i) pushGlobal(m.slots[i], cls);
  for (std::uint32_t i = k; i < n; ++i) m.slots[i - k] = m.slots[i];
  m.n.store(n - k, std::memory_order_release);
}

void MagazineDepot::cache(Ref seg, std::uint32_t cls, std::uint32_t tid) {
  ThreadMags* tm = magsOfOrCreate(tid);
  if (tm == nullptr) {
    pushGlobal(seg, cls);
    return;
  }
  Magazine& m = tm->mags[cls];
  SpinGuard lk(m.mu);
  std::uint32_t n = m.n.load(std::memory_order_relaxed);
  if (n == kMagazineCapacity) {
    flushLocked(m, cls, kMagazineCapacity / 2);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    n = m.n.load(std::memory_order_relaxed);
  }
  m.slots[n] = seg;
  m.n.store(n + 1, std::memory_order_release);
}

void MagazineDepot::drainThread(std::uint32_t tid) noexcept {
  ThreadMags* tm = magsOf(tid);
  if (tm == nullptr) return;
  for (std::uint32_t cls = 0; cls < SizeClasses::kNumClasses; ++cls) {
    Magazine& m = tm->mags[cls];
    SpinGuard lk(m.mu);
    flushLocked(m, cls, m.n.load(std::memory_order_relaxed));
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t MagazineDepot::drainAll(std::vector<Ref>& out) {
  std::size_t moved = 0;
  for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
    ThreadMags* tm = magsOf(t);
    if (tm == nullptr) continue;
    for (std::uint32_t cls = 0; cls < SizeClasses::kNumClasses; ++cls) {
      Magazine& m = tm->mags[cls];
      SpinGuard lk(m.mu);
      const std::uint32_t n = m.n.load(std::memory_order_relaxed);
      // oaklint: allow(R3, emergency drain before OffHeapOutOfMemory — cold)
      for (std::uint32_t i = 0; i < n; ++i) out.push_back(m.slots[i]);
      moved += n;
      m.n.store(0, std::memory_order_release);
    }
  }
  for (std::uint32_t cls = 0; cls < SizeClasses::kNumClasses; ++cls) {
    for (Ref r = popGlobalOne(cls); !r.isNull(); r = popGlobalOne(cls)) {
      out.push_back(r);
      ++moved;
    }
  }
  if (moved != 0) drains_.fetch_add(1, std::memory_order_relaxed);
  return moved;
}

MagazineDepot::Stats MagazineDepot::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.globalHits = globalHits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.drains = drains_.load(std::memory_order_relaxed);
  for (std::uint32_t cls = 0; cls < SizeClasses::kNumClasses; ++cls) {
    std::uint64_t cached = global_[cls].count.load(std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < kMaxThreads; ++t) {
      if (const ThreadMags* tm = perThread_[t].load(std::memory_order_acquire)) {
        cached += tm->mags[cls].n.load(std::memory_order_relaxed);
      }
    }
    if (cached == 0) continue;
    s.classes.push_back({SizeClasses::bytesFor(cls), cached});
    s.cachedSlices += cached;
    s.cachedBytes += cached * SizeClasses::bytesFor(cls);
  }
  return s;
}

}  // namespace oak::mem
