// Shared pool of pre-allocated off-heap arenas (§3.2).
//
// "Oak's allocator manages a shared pool of large (100MB by default)
//  pre-allocated off-heap arenas. The pool supports multiple Oak instances.
//  Each arena is associated with a single Oak instance and returns to the
//  pool when that instance is disposed."
//
// The pool enforces a total byte budget, modelling the direct-memory limit
// of the paper's experiments (Figures 3 and 5 vary this budget).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "mem/arena.hpp"
#include "mem/ref.hpp"

namespace oak::mem {

class BlockPool {
 public:
  struct Config {
    std::size_t blockBytes = 8u << 20;        ///< arena size (paper: 100 MB; scaled)
    std::size_t budgetBytes = SIZE_MAX;       ///< total off-heap budget
    /// Non-empty → arenas are file-backed (`<storageDir>/arena-<id>.oakblk`,
    /// MAP_SHARED).  Durable maps point this at `<dir>/arenas`; the files
    /// are a paging substrate, recovery rebuilds from checkpoint + WAL.
    std::string storageDir;
  };

  BlockPool() : BlockPool(Config{}) {}
  explicit BlockPool(Config cfg);

  /// Takes an arena from the pool (allocating a new one if none is free).
  /// Returns its id.  Throws OffHeapOutOfMemory when the budget is exhausted.
  std::uint32_t acquire();

  /// Returns an arena to the free list (called on Oak-instance disposal).
  void release(std::uint32_t id);

  Arena& arena(std::uint32_t id) noexcept { return *arenas_[id]; }
  const Arena& arena(std::uint32_t id) const noexcept { return *arenas_[id]; }

  std::size_t blockBytes() const noexcept { return cfg_.blockBytes; }
  std::size_t budgetBytes() const noexcept { return cfg_.budgetBytes; }

  /// Bytes currently held by live (acquired) arenas.
  std::size_t acquiredBytes() const;

  /// Process-wide default pool (unbounded budget); benchmarks construct
  /// their own budgeted pools instead.
  static BlockPool& global();

 private:
  Config cfg_;
  mutable Mutex mu_;
  /// Not OAK_GUARDED_BY(mu_): arena(id) reads without the lock from hot
  /// paths, which is safe only because the constructor reserves full
  /// Ref::kMaxBlocks capacity — push_back under mu_ never reallocates, and
  /// an id is handed to a reader only after its slot was published by
  /// acquire()'s release of mu_.
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<std::uint32_t> freeIds_ OAK_GUARDED_BY(mu_);
  std::size_t acquired_ OAK_GUARDED_BY(mu_) = 0;
};

}  // namespace oak::mem
