#include "mem/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <new>

#include "common/checked.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"

namespace oak::mem {

// mmap keeps arenas out of the C heap, mirroring Java's off-heap direct
// buffers, and lets the OS lazily back pages that the map never touches.
Arena::Arena(std::size_t bytes) : size_(bytes) {
  OAK_FAULT_POINT("arena.alloc", OffHeapOutOfMemory);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw OffHeapOutOfMemory();
  base_ = static_cast<std::byte*>(p);
}

// File-backed variant: the fd is closed right after mmap (the mapping keeps
// the file open), so arenas hold no descriptors.
Arena::Arena(const std::string& path, std::size_t bytes) : size_(bytes) {
  OAK_FAULT_POINT("arena.alloc", OffHeapOutOfMemory);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) throw OakIoError("arena: cannot create " + path);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    throw OakIoError("arena: cannot size " + path);
  }
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw OffHeapOutOfMemory();
  base_ = static_cast<std::byte*>(p);
}

Arena::~Arena() {
  if (base_ != nullptr) {
    // The allocator poisons arena slack under ASan; clear the shadow before
    // unmapping so a later mmap at the same address starts addressable.
    OAK_ASAN_UNPOISON(base_, size_);
    ::munmap(base_, size_);
  }
}

}  // namespace oak::mem
