// Segregated size classes for the magazine allocator front-end.
//
// The first-fit flat free list (§3.2) serializes every non-bump allocation
// behind one lock and a linear scan.  The magazine layer in front of it
// (mem/magazine.hpp) caches freed *segments* per size class, so the class
// mapping below is the contract that makes alloc and free agree on segment
// geometry without any per-segment metadata in release builds:
//
//   segment bytes = slice header (checked builds only) + roundUp(payload)
//   classFor(segment) -> class index;  bytesFor(class) -> segment bytes
//
// Both sides derive the class from the user-visible length alone, so a
// reference freed years after it was allocated reconstitutes exactly the
// segment the allocator carved — nothing is ever lost to a mapping skew.
//
// Geometry: exact 8-byte-stride classes up to 256 B (zero internal
// fragmentation where allocations are densest), then four power-of-two
// bands whose stride is 1/16 of the band top, capping per-allocation waste
// at ~6%.  Segments above kMaxSegBytes bypass the magazines entirely and
// take the first-fit path.
#pragma once

#include <cstdint>

namespace oak::mem {

struct SizeClasses {
  static constexpr std::uint32_t kAlign = 8;
  /// Largest magazine-managed segment; bigger requests go straight to the
  /// flat free list / bump pointer.
  static constexpr std::uint32_t kMaxSegBytes = 4096;
  static constexpr std::uint32_t kNumClasses = 96;

  static constexpr bool eligible(std::uint32_t segBytes) noexcept {
    return segBytes != 0 && segBytes <= kMaxSegBytes;
  }

  /// Class index for a segment of `segBytes` (must be eligible and a
  /// multiple of kAlign — the allocator always rounds first).
  static constexpr std::uint32_t classFor(std::uint32_t segBytes) noexcept {
    if (segBytes <= 256) return segBytes / 8 - 1;            // stride 8:  [0, 32)
    if (segBytes <= 512) return 32 + (segBytes - 257) / 16;  // stride 16: [32, 48)
    if (segBytes <= 1024) return 48 + (segBytes - 513) / 32; // stride 32: [48, 64)
    if (segBytes <= 2048) return 64 + (segBytes - 1025) / 64;// stride 64: [64, 80)
    return 80 + (segBytes - 2049) / 128;                     // stride 128:[80, 96)
  }

  /// Segment bytes a class hands out (the inverse upper bound of classFor).
  static constexpr std::uint32_t bytesFor(std::uint32_t cls) noexcept {
    if (cls < 32) return (cls + 1) * 8;
    if (cls < 48) return 256 + (cls - 31) * 16;
    if (cls < 64) return 512 + (cls - 47) * 32;
    if (cls < 80) return 1024 + (cls - 63) * 64;
    return 2048 + (cls - 79) * 128;
  }
};

// The mapping must be a rounding Galois pair: bytesFor(classFor(s)) is the
// smallest class size >= s, and every class maps back to itself.
static_assert(SizeClasses::classFor(8) == 0);
static_assert(SizeClasses::bytesFor(0) == 8);
static_assert(SizeClasses::classFor(256) == 31);
static_assert(SizeClasses::classFor(264) == 32);
static_assert(SizeClasses::bytesFor(32) == 272);
static_assert(SizeClasses::classFor(512) == 47);
static_assert(SizeClasses::classFor(520) == 48);
static_assert(SizeClasses::classFor(1024) == 63);
static_assert(SizeClasses::classFor(1040) == 64);
static_assert(SizeClasses::bytesFor(64) == 1088);
static_assert(SizeClasses::classFor(2048) == 79);
static_assert(SizeClasses::classFor(4096) == 95);
static_assert(SizeClasses::bytesFor(95) == 4096);
static_assert([] {
  for (std::uint32_t c = 0; c < SizeClasses::kNumClasses; ++c) {
    const std::uint32_t b = SizeClasses::bytesFor(c);
    if (SizeClasses::classFor(b) != c) return false;      // self-inverse
    if (b % SizeClasses::kAlign != 0) return false;       // aligned sizes
    if (c > 0 && SizeClasses::bytesFor(c - 1) >= b) return false;  // monotone
  }
  for (std::uint32_t s = 8; s <= SizeClasses::kMaxSegBytes; s += 8) {
    if (SizeClasses::bytesFor(SizeClasses::classFor(s)) < s) return false;
  }
  return true;
}());

}  // namespace oak::mem
