// First-fit flat free-list allocator over pooled arenas (§3.2).
//
// "Key and value buffers are allocated from the arena's flat free list using
//  a first-fit approach; they return to the free list upon KV-pair deletion
//  or value resize."
//
// Fast path: an atomic bump pointer inside the instance's current arena.
// Slow path: first-fit scan of the free list, then acquiring a fresh arena
// from the shared pool.  All allocations are 8-byte aligned and never span
// arenas.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/spin.hpp"
#include "mem/block_pool.hpp"
#include "mem/ref.hpp"

namespace oak::mem {

class FirstFitAllocator {
 public:
  explicit FirstFitAllocator(BlockPool& pool);
  ~FirstFitAllocator();

  FirstFitAllocator(const FirstFitAllocator&) = delete;
  FirstFitAllocator& operator=(const FirstFitAllocator&) = delete;

  /// Allocates `len` bytes off-heap. Thread-safe. Throws OffHeapOutOfMemory.
  Ref alloc(std::uint32_t len);

  /// Returns a previously allocated reference to the free list. Thread-safe.
  void free(Ref ref);

  /// Pointer to the first byte of `ref`.  Safe to call concurrently with
  /// allocation; the caller must have obtained `ref` through a properly
  /// synchronized channel (entry CAS etc.).
  std::byte* translate(Ref ref) const noexcept {
    return bases_[ref.block()].load(std::memory_order_acquire) + ref.offset();
  }

  /// Total off-heap bytes this instance holds (whole arenas) — the paper's
  /// "fast estimation of RAM footprint".
  std::size_t footprintBytes() const noexcept {
    return ownedBlocks() * pool_.blockBytes();
  }
  std::size_t ownedBlocks() const noexcept {
    return nOwned_.load(std::memory_order_relaxed);
  }
  /// Bytes handed out and not yet freed (logical occupancy).
  std::size_t allocatedBytes() const noexcept {
    return outBytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocCount() const noexcept {
    return allocCount_.load(std::memory_order_relaxed);
  }
  /// Cumulative frees / bytes returned to the free list (obs gauges).
  std::uint64_t freeOpCount() const noexcept {
    return freeOps_.load(std::memory_order_relaxed);
  }
  std::uint64_t freedBytes() const noexcept {
    return freedBytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t freeListLength() const;

  BlockPool& pool() noexcept { return pool_; }

 private:
  static constexpr std::uint32_t roundUp(std::uint32_t n) noexcept {
    return n < kAlign ? kAlign : ((n + kAlign - 1) & ~(kAlign - 1));
  }

  Ref tryBump(std::uint32_t need);
  Ref tryFreeList(std::uint32_t need);
  void newBlockLocked(std::uint32_t need);

  static constexpr std::uint32_t kAlign = 8;

  BlockPool& pool_;

  // Packed current-arena cursor: [block:20 | offset:40] (offset is bounded by
  // the 26-bit Ref range anyway).
  std::atomic<std::uint64_t> cur_{0};
  std::mutex growMu_;

  // Flat free list: vector of free segments scanned first-fit.
  mutable SpinLock freeMu_;
  std::vector<Ref> freeList_;
  std::atomic<std::uint64_t> freeCount_{0};

  // block id -> base pointer (written once per acquired block).
  std::atomic<std::byte*> bases_[Ref::kMaxBlocks];
  std::vector<std::uint32_t> owned_;
  std::atomic<std::size_t> nOwned_{0};

  std::atomic<std::size_t> outBytes_{0};
  std::atomic<std::uint64_t> allocCount_{0};
  std::atomic<std::uint64_t> freeOps_{0};
  std::atomic<std::uint64_t> freedBytes_{0};
};

}  // namespace oak::mem
