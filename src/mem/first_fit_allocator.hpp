// First-fit flat free-list allocator over pooled arenas (§3.2).
//
// "Key and value buffers are allocated from the arena's flat free list using
//  a first-fit approach; they return to the free list upon KV-pair deletion
//  or value resize."
//
// Fast path: an atomic bump pointer inside the instance's current arena.
// Recycling path: per-thread size-class magazines backed by global per-class
// free stacks (mem/magazine.hpp) absorb the delete/resize churn that the
// paper's flat free list would serialize behind one lock; only oversized
// (> SizeClasses::kMaxSegBytes) or cold allocations fall through to the
// first-fit scan and arena growth.  Magazine-eligible segments are carved at
// their class size, so alloc and free agree on segment geometry from the
// user length alone.  All allocations are 8-byte aligned and never span
// arenas.
//
// Exhaustion: before OffHeapOutOfMemory can escape the grow path, every
// magazine and global stack is drained back into the flat free list and the
// allocation retried — cached slices can never cause a spurious
// ResourceExhausted in the PR-4 degraded path.  Exiting threads drain their
// magazines via a ThreadRegistry exit hook.
//
// OakSan hooks (common/checked.hpp):
//  * An allocation-start bitmap (one bit per 8-byte granule, every build)
//    records which slices are live; free() uses it to reject double-free —
//    aborting in checked builds, error-returning otherwise — and the
//    ChunkWalker uses it to prove no live entry points at a freed slice.
//  * Under AddressSanitizer, whole arenas are poisoned on acquisition and
//    slices are unpoisoned on alloc / re-poisoned on free, so off-heap
//    use-after-free and out-of-bounds trap like heap bugs do.
//  * In OAK_CHECKED builds every slice carries a 16-byte header with a
//    magic state word and a generation tag; translate() validates it on
//    every dereference and aborts with a diagnostic on stale handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/checked.hpp"
#include "common/mutex.hpp"
#include "common/spin.hpp"
#include "mem/block_pool.hpp"
#include "mem/magazine.hpp"
#include "mem/ref.hpp"
#include "mem/size_classes.hpp"

namespace oak::mem {

class FirstFitAllocator {
 public:
  /// `emergencyReserveBytes` > 0 carves a segment of that size out of the
  /// first arena and keeps it off the free list; releaseEmergencyReserve()
  /// makes it allocatable.  The degraded tryPut path uses it as a last
  /// tranche before reporting Status::ResourceExhausted.
  explicit FirstFitAllocator(BlockPool& pool, std::uint32_t emergencyReserveBytes = 0);
  ~FirstFitAllocator();

  FirstFitAllocator(const FirstFitAllocator&) = delete;
  FirstFitAllocator& operator=(const FirstFitAllocator&) = delete;

  /// Allocates `len` bytes off-heap. Thread-safe. Throws OffHeapOutOfMemory.
  Ref alloc(std::uint32_t len);

  /// Allocates `len` bytes in the *pinned* domain: dedicated arenas that are
  /// never evacuation victims, so the returned slice's physical address is
  /// stable for the allocation's whole life.  Value headers live here —
  /// OakRBuffer escapes EBR guards holding raw header pointers, so headers
  /// must never move (DESIGN.md §13).  Pinned slices are freed through the
  /// ordinary free(); routing is by block.  Thread-safe; throws
  /// OffHeapOutOfMemory.
  Ref allocPinned(std::uint32_t len);

  /// Returns a previously allocated reference to the free list. Thread-safe.
  /// Returns false (checked builds: aborts) when `ref` is null, not owned by
  /// this allocator, or already free — the free list is left untouched, so a
  /// double-free cannot corrupt it.
  bool free(Ref ref);

  /// Pointer to the first byte of `ref`.  Safe to call concurrently with
  /// allocation; the caller must have obtained `ref` through a properly
  /// synchronized channel (entry CAS etc.).  Checked builds validate the
  /// slice header and abort on use-after-free / stale handles.
  std::byte* translate(Ref ref) const noexcept {
#if OAK_CHECKED
    validateLive(ref, "translate");
#endif
    return bases_[ref.block()].load(std::memory_order_acquire) + ref.offset();
  }

  /// True when `ref` addresses a currently-live allocation start (bitmap
  /// probe; available in every build).  Used by debug validators.
  bool isLive(Ref ref) const noexcept {
    if (ref.isNull() || ref.block() >= Ref::kMaxBlocks) return false;
    const std::atomic<std::uint64_t>* map =
        allocMap_[ref.block()].load(std::memory_order_acquire);
    if (map == nullptr) return false;
    const std::uint32_t g = ref.offset() / kAlign;
    return ((map[g >> 6].load(std::memory_order_relaxed) >> (g & 63)) & 1) != 0;
  }

#if OAK_CHECKED
  /// Generation stamped into the slice header when `ref` was allocated.
  std::uint32_t generationOf(Ref ref) const noexcept;
  /// Aborts unless `ref` is live and still carries `expectedGen` — the
  /// exact-ABA probe (a recycled slice passes isLive but fails this).
  void assertLiveGeneration(Ref ref, std::uint32_t expectedGen) const noexcept;
#endif

  /// Total off-heap bytes this instance holds (whole arenas) — the paper's
  /// "fast estimation of RAM footprint".
  std::size_t footprintBytes() const noexcept {
    return ownedBlocks() * pool_.blockBytes();
  }
  std::size_t ownedBlocks() const noexcept {
    return nOwned_.load(std::memory_order_relaxed);
  }
  /// Bytes handed out and not yet freed (logical occupancy).
  std::size_t allocatedBytes() const noexcept {
    return outBytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocCount() const noexcept {
    return allocCount_.load(std::memory_order_relaxed);
  }
  /// Cumulative frees / bytes returned to the free list (obs gauges).
  std::uint64_t freeOpCount() const noexcept {
    return freeOps_.load(std::memory_order_relaxed);
  }
  std::uint64_t freedBytes() const noexcept {
    return freedBytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t freeListLength() const;

  /// Per-instance magazine switch.  Must be flipped before the first
  /// allocation (asserted): the class mapping decides segment geometry, so
  /// toggling it mid-life would make free() reconstitute segments alloc
  /// never carved.  Tests and A/B benchmarks use this to compare against
  /// the bare first-fit path.
  void setMagazinesEnabled(bool on);
  bool magazinesEnabled() const noexcept { return magsEnabled_; }

  /// Process-wide default for new instances (also overridable with the
  /// OAK_MAGAZINES environment variable; "0" disables).  Benchmarks use it
  /// to build whole maps on the pre-magazine path.
  static void setMagazinesDefaultEnabled(bool on);
  static bool magazinesDefaultEnabled();

  /// True when `a`-byte and `b`-byte allocations are carved at different
  /// segment sizes.  Value resize uses this as its reallocation policy
  /// (§3.2 "return to the free list upon ... value resize"): a shrink that
  /// stays inside the slice's size class keeps the slice; one that crosses
  /// a class boundary frees and reallocates so the bytes recycle instead
  /// of ratcheting every value up to its historical maximum.  Oversized
  /// (magazine-ineligible) slices always shrink in place.
  static bool classDiffers(std::uint32_t a, std::uint32_t b) noexcept {
    const std::uint32_t na = roundUp(a) + kSliceHeaderBytes;
    const std::uint32_t nb = roundUp(b) + kSliceHeaderBytes;
    if (!SizeClasses::eligible(na) || !SizeClasses::eligible(nb)) return false;
    return SizeClasses::classFor(na) != SizeClasses::classFor(nb);
  }

  /// Magazine counters + per-class occupancy (zeroed when disabled).
  MagazineDepot::Stats magazineStats() const {
    return magsEnabled_ ? depot_.stats() : MagazineDepot::Stats{};
  }
  std::uint64_t magazineHitCount() const noexcept {
    return depot_.hitCount() + depot_.globalHitCount();
  }
  std::uint64_t magazineMissCount() const noexcept {
    return depot_.missCount();
  }

  // ── Arena evacuation (DESIGN.md §13) ────────────────────────────────────
  //
  // The relocation pass marks sparse arenas with beginEvacuate(), copies
  // every live slice out (the map layer owns that walk), and calls
  // finishEvacuate() once the arena provably holds no live slice.  While a
  // block is marked:
  //  * tryFreeList() skips its segments, so no new allocation lands in it;
  //  * free() bypasses the magazines for its slices (straight to the flat
  //    free list), and magazine pops that surface one of its cached
  //    segments park it on the free list instead of handing it out.
  // finishEvacuate() succeeds only when the block's free-list segments plus
  // its recorded waste bytes tile the whole arena — an in-flight allocation
  // holds its segment *out* of the list, so the tiling check cannot pass
  // while any slice is live or being carved.

  /// Per-block occupancy snapshot for evacuation scoring.
  struct BlockOccupancy {
    std::uint32_t block;
    std::uint64_t liveBytes;  ///< bytes handed out of this block, not yet freed
    bool pinned;              ///< pinned domain (never an evacuation victim)
    bool evacuating;          ///< beginEvacuate() marked, not yet finished
    bool current;             ///< hosts a bump cursor (data or pinned)
  };
  std::vector<BlockOccupancy> blockOccupancy();

  /// Marks `block` as an evacuation victim.  Refuses (returns false) blocks
  /// this allocator does not own, pinned blocks, the current bump block, the
  /// block hosting the un-released emergency reserve, and blocks already
  /// marked.  After marking victims the caller must flushMagazines() so
  /// previously-cached victim segments return to the free list.
  bool beginEvacuate(std::uint32_t block);
  /// Clears the victim mark; the block becomes allocatable again.
  void abortEvacuate(std::uint32_t block);
  /// Releases a fully-evacuated victim back to the pool: verifies the
  /// free-segment tiling, purges the block's free-list entries, poisons the
  /// arena, and returns its id (and budget) to the BlockPool.  Returns false
  /// when the block still holds live (or in-flight) slices — the caller
  /// retries next pass or aborts.
  bool finishEvacuate(std::uint32_t block);
  bool isEvacuating(std::uint32_t block) const noexcept {
    return block < Ref::kMaxBlocks &&
           evacuating_[block].load(std::memory_order_acquire);
  }

  /// Releases every owned arena whose free segments + waste tile the whole
  /// block (no live slice).  Called from the grow path under terminal
  /// pressure so fully-dead-but-unreleased arenas don't count toward the
  /// budget and trip ResourceExhausted prematurely; also callable directly.
  /// Returns the number of arenas released.
  std::size_t releaseDeadArenas();

  /// Empties every magazine + global stack into the flat free list (public
  /// face of the grow path's terminal-pressure drain; evacuation uses it to
  /// flush cached victim segments).
  void flushMagazines() { (void)drainMagazinesToFreeList(); }

  /// Evacuation gauges.
  std::size_t pinnedBlocks() const noexcept {
    return nPinned_.load(std::memory_order_relaxed);
  }
  std::size_t evacuatingBlocks() const noexcept {
    return nEvacuating_.load(std::memory_order_relaxed);
  }
  std::uint64_t liveBytesInBlock(std::uint32_t block) const noexcept {
    return block < Ref::kMaxBlocks
               ? liveBytes_[block].load(std::memory_order_relaxed)
               : 0;
  }

  /// Hands the carved emergency reserve to the free list.  Returns false
  /// when no reserve is held (never configured, not yet carved, or already
  /// released).  The reserve is released at most once.
  bool releaseEmergencyReserve();
  /// True while a carved reserve is still being held back.
  bool emergencyReserveAvailable() const;

  BlockPool& pool() noexcept { return pool_; }

 private:
  static constexpr std::uint32_t kAlign = 8;

  // Every allocation is padded with a leading slice header in checked
  // builds; segment arithmetic uses the constant so both modes share one
  // code path (it is 0 — and the header vanishes — when unchecked).
#if OAK_CHECKED
  static constexpr std::uint32_t kSliceHeaderBytes = 16;
  static constexpr std::uint32_t kLiveMagic = 0xA110CA7Eu;
  static constexpr std::uint32_t kFreeMagic = 0xF4EEF4EEu;
  struct SliceHeader {
    std::uint32_t state;       // kLiveMagic / kFreeMagic
    std::uint32_t generation;  // stamped at alloc; survives the free
    std::uint32_t length;      // user-visible length at allocation
    std::uint32_t pad_;
  };
  static_assert(sizeof(SliceHeader) == kSliceHeaderBytes);
  SliceHeader* sliceHeader(Ref ref) const noexcept {
    return reinterpret_cast<SliceHeader*>(
        bases_[ref.block()].load(std::memory_order_acquire) + ref.offset() -
        kSliceHeaderBytes);
  }
  void validateLive(Ref ref, const char* what) const noexcept;
#else
  static constexpr std::uint32_t kSliceHeaderBytes = 0;
#endif

  static constexpr std::uint32_t roundUp(std::uint32_t n) noexcept {
    return n < kAlign ? kAlign : ((n + kAlign - 1) & ~(kAlign - 1));
  }

  Ref tryBump(std::uint32_t need) { return tryBumpOn(cur_, need); }
  Ref tryBumpOn(std::atomic<std::uint64_t>& cursor, std::uint32_t need);
  Ref tryFreeList(std::uint32_t need) OAK_EXCLUDES(freeMu_);
  Ref tryPinnedFreeList(std::uint32_t need) OAK_EXCLUDES(freeMu_);
  void newBlockLocked(std::uint32_t need, bool pinned) OAK_REQUIRES(growMu_);
  /// Magazine pops route evacuating-block segments back to the flat free
  /// list (returns true) instead of handing them out.
  bool parkIfEvacuating(Ref seg);
  std::size_t releaseDeadArenasLocked() OAK_REQUIRES(growMu_);
  /// Drops every free-list entry belonging to `id` (both domains).
  void purgeFreeSegmentsLocked(std::uint32_t id) OAK_REQUIRES(freeMu_);
  /// Poisons, forgets, and returns `id` to the pool.  The block must hold no
  /// live slice and no free-list entry.
  void releaseBlockLocked(std::uint32_t id) OAK_REQUIRES(growMu_);
  /// Stamps the slice header, flips the bitmap bit, unpoisons, accounts.
  /// `seg` is a raw segment of exactly `need` bytes (the class size for
  /// magazine-eligible allocations, roundUp(len) + header otherwise).
  Ref finishAlloc(Ref seg, std::uint32_t len, std::uint32_t need);
  /// Empties every magazine + global stack into the flat free list; the
  /// grow path's last resort before letting OffHeapOutOfMemory escape.
  /// Returns true when at least one segment was recovered.
  bool drainMagazinesToFreeList();
#if OAK_CHECKED
  /// Aborts unless a magazine-served raw segment still carries the freed
  /// header free() stamped — catches corruption of cached slices.
  void validateCachedSegment(Ref seg) const noexcept;
#endif
  static void threadExitTrampoline(void* ctx, std::uint32_t tid);

  BlockPool& pool_;

  // Packed current-arena cursor: [block:20 | offset:40] (offset is bounded by
  // the 26-bit Ref range anyway).  pinnedCur_ is the same thing for the
  // pinned domain.
  std::atomic<std::uint64_t> cur_{0};
  std::atomic<std::uint64_t> pinnedCur_{0};
  Mutex growMu_ OAK_ACQUIRED_BEFORE(freeMu_);

  // Flat free list: vector of free segments scanned first-fit.  The pinned
  // domain keeps its own list so data-domain allocations can never be
  // served from (and thereby un-tile) a pinned arena.
  mutable SpinLock freeMu_;
  std::vector<Ref> freeList_ OAK_GUARDED_BY(freeMu_);
  std::vector<Ref> pinnedFree_ OAK_GUARDED_BY(freeMu_);
  std::atomic<std::uint64_t> freeCount_{0};

  // Emergency reserve: a raw segment (same format as free-list entries)
  // withheld from allocation until releaseEmergencyReserve().  reserveSeg_
  // is guarded by freeMu_; the carve itself happens under growMu_.
  const std::uint32_t reserveBytes_;
  bool reserveCarved_ OAK_GUARDED_BY(freeMu_) = false;
  Ref reserveSeg_ OAK_GUARDED_BY(freeMu_){};

  // block id -> base pointer (written once per acquired block).
  std::atomic<std::byte*> bases_[Ref::kMaxBlocks];
  // block id -> allocation-start bitmap (one bit per kAlign granule).
  std::atomic<std::atomic<std::uint64_t>*> allocMap_[Ref::kMaxBlocks];
  std::vector<std::uint32_t> owned_ OAK_GUARDED_BY(growMu_);
  std::atomic<std::size_t> nOwned_{0};

  // Per-block accounting for evacuation: bytes handed out and not yet freed
  // (occupancy scoring), bytes dropped without a free-list entry (arena-
  // switch tails too small to salvage — so the tiling check can still close),
  // and the pinned / evacuating flags that drive alloc- and free-path
  // routing.
  std::atomic<std::uint64_t> liveBytes_[Ref::kMaxBlocks] = {};
  std::atomic<std::uint32_t> wasteBytes_[Ref::kMaxBlocks] = {};
  std::atomic<bool> pinned_[Ref::kMaxBlocks] = {};
  std::atomic<bool> evacuating_[Ref::kMaxBlocks] = {};
  std::atomic<std::size_t> nPinned_{0};
  std::atomic<std::size_t> nEvacuating_{0};

  // Size-class magazine front-end (mem/magazine.hpp).  magsEnabled_ is
  // fixed before the first allocation; see setMagazinesEnabled().
  MagazineDepot depot_{bases_, kSliceHeaderBytes};
  bool magsEnabled_;

  std::atomic<std::size_t> outBytes_{0};
  std::atomic<std::uint64_t> allocCount_{0};
  std::atomic<std::uint64_t> freeOps_{0};
  std::atomic<std::uint64_t> freedBytes_{0};
#if OAK_CHECKED
  std::atomic<std::uint32_t> sliceGen_{1};
#endif
};

}  // namespace oak::mem
