// A single off-heap arena: one large contiguous allocation outside the
// simulated managed heap (the stand-in for Java's direct ByteBuffers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"

namespace oak::mem {

class Arena {
 public:
  explicit Arena(std::size_t bytes);

  /// File-backed arena (durable maps): MAP_SHARED over `path`, created and
  /// sized with ftruncate.  A substrate detail only — recovery rebuilds
  /// state from checkpoint + WAL, never by trusting these bytes — but the
  /// shared mapping keeps the paper's zero-copy reads while letting the OS
  /// write pages back instead of swapping them.
  Arena(const std::string& path, std::size_t bytes);

  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  std::size_t size() const noexcept { return size_; }
  std::byte* base() noexcept { return base_; }
  const std::byte* base() const noexcept { return base_; }

  std::byte* at(std::size_t offset) noexcept { return base_ + offset; }

 private:
  std::byte* base_;
  std::size_t size_;
};

}  // namespace oak::mem
