// Size-class magazine layer for the off-heap allocator slow path.
//
// The paper's flat free list (§3.2) keeps allocation off the critical path
// only while the bump pointer serves; once deletes and value resizes start
// recycling segments, every reuse serializes behind the free-list lock and
// a linear first-fit scan.  The magazine layer segregates that traffic:
//
//   free -> per-thread magazine (bounded Ref cache, no sharing, one
//           uncontended spinlock) -> overflow flushes half to the class's
//           global stack
//   alloc -> per-thread magazine pop -> global-stack pop (refilling a small
//           batch into the magazine) -> first-fit fallback
//
// The global stacks are Treiber stacks, one per size class, intrusively
// linked through the first 8 bytes of each cached segment's payload (the
// slice is dead memory while cached; the checked-build slice header in
// front of the payload is deliberately left intact so OakSan still traps
// use-after-free on cached slices).  Pushes are lock-free; pops serialize
// per class behind a tiny spinlock, which pins the top node so the
// read-link/CAS window can never race the segment being recycled (the
// soundness hole in fully lock-free inline-linked pops).
//
// ASan discipline: magazine-resident segments stay fully poisoned (their
// refs live in the magazine's slot array, not in the segment).  Global-
// stack residents have exactly their 8-byte link word unpoisoned while
// cached; everything beyond it still traps.  See common/checked.hpp.
//
// Thread retirement: FirstFitAllocator registers a ThreadRegistry exit
// hook and calls drainThread(id), which flushes the exiting thread's
// magazines to the global stacks so no slice is stranded in a dead slot.
// drainAll() empties every cache (the allocator's last step before it
// would otherwise report off-heap exhaustion).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/spin.hpp"
#include "common/thread_registry.hpp"
#include "mem/ref.hpp"
#include "mem/size_classes.hpp"

namespace oak::mem {

class MagazineDepot {
 public:
  /// Freed slices a magazine holds per class before flushing half.
  static constexpr std::uint32_t kMagazineCapacity = 16;
  /// Segments moved magazine-ward on one global-stack hit (1 for the
  /// caller + up to kRefillBatch-1 cached for its next allocations).
  static constexpr std::uint32_t kRefillBatch = 4;

  struct ClassOccupancy {
    std::uint32_t classBytes = 0;
    std::uint64_t cachedSlices = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< served from the caller's magazine
    std::uint64_t globalHits = 0;  ///< served from a global free stack
    std::uint64_t misses = 0;      ///< fell through to the first-fit path
    std::uint64_t flushes = 0;     ///< magazine-overflow batches pushed global
    std::uint64_t drains = 0;      ///< thread-retirement / emergency drains
    std::uint64_t cachedSlices = 0;
    std::size_t cachedBytes = 0;
    std::vector<ClassOccupancy> classes;  ///< non-empty classes only
  };

  /// `bases` is the owning allocator's block-id -> arena-base table (read
  /// with acquire loads); `headerBytes` is its slice-header prefix, so the
  /// depot can address the payload link word of a raw segment.
  MagazineDepot(const std::atomic<std::byte*>* bases, std::uint32_t headerBytes)
      : bases_(bases), headerBytes_(headerBytes) {
    for (auto& m : perThread_) m.store(nullptr, std::memory_order_relaxed);
  }
  ~MagazineDepot();

  MagazineDepot(const MagazineDepot&) = delete;
  MagazineDepot& operator=(const MagazineDepot&) = delete;

  /// Pops a cached segment of `cls` from thread `tid`'s magazine.
  /// Null when the thread has no magazines yet or the class is empty.
  Ref popLocal(std::uint32_t cls, std::uint32_t tid) noexcept;

  /// Pops from the class's global stack; on a hit, also refills up to
  /// kRefillBatch-1 further segments into `tid`'s magazine.
  Ref popGlobal(std::uint32_t cls, std::uint32_t tid);

  /// Caches a freed raw segment (offset at the segment start, length the
  /// full class size) in `tid`'s magazine, flushing half to the global
  /// stack when the magazine is full.
  void cache(Ref seg, std::uint32_t cls, std::uint32_t tid);

  /// Flushes every magazine of `tid` to the global stacks (thread exit).
  void drainThread(std::uint32_t tid) noexcept;

  /// Empties every magazine and every global stack into `out` (raw
  /// segments, free-list format).  Returns the number of segments moved.
  /// The allocator calls this before giving up with OffHeapOutOfMemory so
  /// cached slices can never cause a spurious ResourceExhausted.
  std::size_t drainAll(std::vector<Ref>& out);

  void noteMiss() noexcept { misses_.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t hitCount() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t globalHitCount() const noexcept {
    return globalHits_.load(std::memory_order_relaxed);
  }
  std::uint64_t missCount() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Counter + occupancy snapshot (racy sums; counters are monotone).
  Stats stats() const;

 private:
  struct Magazine {
    SpinLock mu;
    /// Mirrors the slot count for lock-free occupancy reads in stats().
    std::atomic<std::uint32_t> n{0};
    Ref slots[kMagazineCapacity] OAK_GUARDED_BY(mu);
  };
  struct ThreadMags {
    Magazine mags[SizeClasses::kNumClasses];
  };

  /// Per-class free stack: head holds the Ref bits of the top segment
  /// (0 == empty).  popMu pins the top node for the read-link/CAS window.
  /// head is deliberately *not* OAK_GUARDED_BY(popMu): pushes CAS it
  /// lock-free; the lock only serializes removals (DESIGN.md §10).
  struct GlobalStack {
    std::atomic<std::uint64_t> head{0};
    SpinLock popMu;
    std::atomic<std::uint64_t> count{0};
  };

  ThreadMags* magsOf(std::uint32_t tid) noexcept {
    return perThread_[tid].load(std::memory_order_acquire);
  }
  ThreadMags* magsOfOrCreate(std::uint32_t tid);

  std::uint64_t* linkWord(Ref seg) const noexcept;
  void pushGlobal(Ref seg, std::uint32_t cls);
  Ref popGlobalOne(std::uint32_t cls) noexcept;
  /// Moves the oldest `k` slots of a locked magazine to the global stack.
  void flushLocked(Magazine& m, std::uint32_t cls, std::uint32_t k)
      OAK_REQUIRES(m.mu);

  const std::atomic<std::byte*>* bases_;
  const std::uint32_t headerBytes_;

  GlobalStack global_[SizeClasses::kNumClasses];
  std::atomic<ThreadMags*> perThread_[kMaxThreads];

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> globalHits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> drains_{0};
};

}  // namespace oak::mem
