// Packed off-heap references (§3.2 of the paper).
//
// The memory manager hands out references consisting of an arena (block) id,
// an offset, and a length.  Oak stores value references in chunk entries and
// manipulates them with CAS, so the whole triple is packed into one 64-bit
// word:
//
//   [ block:12 | offset:26 | length:26 ]
//
// 12 block bits x 26 offset bits = 4096 blocks of up to 64 MiB each
// (256 GiB addressable); lengths up to 64 MiB.  Reference value 0 is the
// paper's ⊥ (null).
#pragma once

#include <cassert>
#include <cstdint>

namespace oak::mem {

class Ref {
 public:
  static constexpr unsigned kBlockBits = 12;
  static constexpr unsigned kOffsetBits = 26;
  static constexpr unsigned kLengthBits = 26;
  // One block id is sacrificed so that the all-zero word stays the null
  // reference (the stored block field is id + 1).
  static constexpr std::uint32_t kMaxBlocks = (1u << kBlockBits) - 1;
  static constexpr std::uint32_t kMaxOffset = 1u << kOffsetBits;
  static constexpr std::uint32_t kMaxLength = 1u << kLengthBits;

  constexpr Ref() noexcept : bits_(0) {}
  constexpr explicit Ref(std::uint64_t bits) noexcept : bits_(bits) {}

  static Ref make(std::uint32_t block, std::uint32_t offset, std::uint32_t length) noexcept {
    assert(block < kMaxBlocks && offset < kMaxOffset && length < kMaxLength);
    // +1 on the block so that block 0 / offset 0 / length 0 is distinguishable
    // from the null reference.
    return Ref((static_cast<std::uint64_t>(block + 1) << (kOffsetBits + kLengthBits)) |
               (static_cast<std::uint64_t>(offset) << kLengthBits) |
               static_cast<std::uint64_t>(length));
  }

  constexpr bool isNull() const noexcept { return bits_ == 0; }
  constexpr explicit operator bool() const noexcept { return bits_ != 0; }

  std::uint32_t block() const noexcept {
    assert(!isNull());
    return static_cast<std::uint32_t>(bits_ >> (kOffsetBits + kLengthBits)) - 1;
  }
  std::uint32_t offset() const noexcept {
    return static_cast<std::uint32_t>(bits_ >> kLengthBits) & (kMaxOffset - 1);
  }
  std::uint32_t length() const noexcept {
    return static_cast<std::uint32_t>(bits_) & (kMaxLength - 1);
  }

  constexpr std::uint64_t bits() const noexcept { return bits_; }

  friend constexpr bool operator==(Ref a, Ref b) noexcept { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(Ref a, Ref b) noexcept { return a.bits_ != b.bits_; }

 private:
  std::uint64_t bits_;
};

}  // namespace oak::mem
