#include "mem/first_fit_allocator.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/thread_registry.hpp"

namespace oak::mem {

namespace {
std::atomic<bool> gMagazinesDefault{true};
}  // namespace

void FirstFitAllocator::setMagazinesDefaultEnabled(bool on) {
  gMagazinesDefault.store(on, std::memory_order_relaxed);
}

bool FirstFitAllocator::magazinesDefaultEnabled() {
  static const bool envEnabled = env::flag("OAK_MAGAZINES", true);
  return envEnabled && gMagazinesDefault.load(std::memory_order_relaxed);
}

void FirstFitAllocator::setMagazinesEnabled(bool on) {
  // The class mapping decides how big a segment each allocation carves;
  // flipping it after segments exist would make free() reconstitute sizes
  // alloc never produced.
  assert(allocCount_.load(std::memory_order_relaxed) == 0 &&
         freeOps_.load(std::memory_order_relaxed) == 0);
  magsEnabled_ = on;
}

void FirstFitAllocator::threadExitTrampoline(void* ctx, std::uint32_t tid) {
  static_cast<FirstFitAllocator*>(ctx)->depot_.drainThread(tid);
}

namespace {
constexpr std::uint64_t packCur(std::uint32_t block, std::uint64_t offset) {
  return (static_cast<std::uint64_t>(block + 1) << 40) | offset;
}
constexpr bool curValid(std::uint64_t cur) { return (cur >> 40) != 0; }
constexpr std::uint32_t curBlock(std::uint64_t cur) {
  return static_cast<std::uint32_t>(cur >> 40) - 1;
}
constexpr std::uint64_t curOffset(std::uint64_t cur) {
  return cur & ((std::uint64_t{1} << 40) - 1);
}

#if OAK_CHECKED
std::uint32_t loadU32(const std::uint32_t& w) noexcept {
  return std::atomic_ref<const std::uint32_t>(w).load(std::memory_order_acquire);
}
void storeU32(std::uint32_t& w, std::uint32_t v) noexcept {
  std::atomic_ref<std::uint32_t>(w).store(v, std::memory_order_release);
}
#endif
}  // namespace

FirstFitAllocator::FirstFitAllocator(BlockPool& pool,
                                     std::uint32_t emergencyReserveBytes)
    : pool_(pool),
      reserveBytes_(emergencyReserveBytes == 0
                        ? 0
                        : roundUp(emergencyReserveBytes) + kSliceHeaderBytes),
      magsEnabled_(magazinesDefaultEnabled()) {
  for (auto& b : bases_) b.store(nullptr, std::memory_order_relaxed);
  for (auto& m : allocMap_) m.store(nullptr, std::memory_order_relaxed);
  // Exiting threads flush their magazines so no freed slice is stranded in
  // a dead per-thread slot (harmless no-op while magazines are disabled).
  ThreadRegistry::addExitHook(&FirstFitAllocator::threadExitTrampoline, this);
}

FirstFitAllocator::~FirstFitAllocator() {
  ThreadRegistry::removeExitHook(&FirstFitAllocator::threadExitTrampoline, this);
  MutexLock lk(growMu_);  // destructor is exclusive, but keeps the analysis exact
  for (std::uint32_t id : owned_) {
    delete[] allocMap_[id].load(std::memory_order_relaxed);
    pool_.release(id);
  }
}

Ref FirstFitAllocator::alloc(std::uint32_t len) {
  OAK_FAULT_POINT("alloc.offheap", OffHeapOutOfMemory);
  // Internal bookkeeping is 8-byte-granular, but the returned reference
  // carries the *exact* requested length: callers (key comparisons, value
  // sizes) must never observe alignment padding.
  std::uint32_t need = roundUp(len) + kSliceHeaderBytes;
  if (need > pool_.blockBytes() || need >= Ref::kMaxLength) {
    throw OakUsageError("allocation larger than arena size");
  }
  // Magazine fast path: recycled segments of this size class, served from
  // the calling thread's cache and, failing that, the class's global
  // stack.  Eligible allocations are carved at the class size everywhere
  // (including the first-fit fallback below) so free() can reconstitute
  // the segment from the user length alone.
  if (magsEnabled_ && SizeClasses::eligible(need)) {
    const std::uint32_t cls = SizeClasses::classFor(need);
    need = SizeClasses::bytesFor(cls);
    const std::uint32_t tid = ThreadRegistry::id();
    // Loops: a pop can surface a segment cached before its block became an
    // evacuation victim — park it on the free list and try the next one.
    while (Ref seg = depot_.popLocal(cls, tid)) {
      if (parkIfEvacuating(seg)) continue;
#if OAK_CHECKED
      validateCachedSegment(seg);
#endif
      return finishAlloc(seg, len, need);
    }
    // The refill itself can need host memory (first touch of a thread's
    // magazines); chaos tests inject OOM here to prove doPut stays
    // strongly exception-safe when the magazine layer fails mid-flight.
    OAK_FAULT_POINT("alloc.magazine", OffHeapOutOfMemory);
    while (Ref seg = depot_.popGlobal(cls, tid)) {
      if (parkIfEvacuating(seg)) continue;
#if OAK_CHECKED
      validateCachedSegment(seg);
#endif
      return finishAlloc(seg, len, need);
    }
    depot_.noteMiss();
  }
  for (;;) {
    // §3.2: first fit from the flat free list; the bump pointer only serves
    // virgin space.  A relaxed counter keeps the common empty-list case off
    // the lock.
    if (freeCount_.load(std::memory_order_relaxed) != 0) {
      if (Ref seg = tryFreeList(need)) return finishAlloc(seg, len, need);
    }
    if (Ref seg = tryBump(need)) return finishAlloc(seg, len, need);
    MutexLock lk(growMu_);
    // Re-check under the lock: another thread may have installed a new arena.
    const std::uint64_t cur = cur_.load(std::memory_order_acquire);
    if (curValid(cur) && curOffset(cur) + need <= pool_.blockBytes()) continue;
    try {
      newBlockLocked(need, /*pinned=*/false);
    } catch (const OffHeapOutOfMemory&) {
      // Terminal pressure: slices parked in magazines are still free
      // memory, and an arena whose every byte is already back on the free
      // list is free *budget*.  Recover both and retry before letting
      // exhaustion escape, so cached slices and dead-but-unreleased arenas
      // never turn into a spurious ResourceExhausted for the degraded
      // tryPut path.
      if (!drainMagazinesToFreeList() && releaseDeadArenasLocked() == 0) throw;
    }
  }
}

Ref FirstFitAllocator::allocPinned(std::uint32_t len) {
  OAK_FAULT_POINT("alloc.offheap", OffHeapOutOfMemory);
  const std::uint32_t need = roundUp(len) + kSliceHeaderBytes;
  if (need > pool_.blockBytes() || need >= Ref::kMaxLength) {
    throw OakUsageError("allocation larger than arena size");
  }
  // No magazine front-end: pinned allocations (value headers) are recycled
  // by the HeaderPool a layer above, so churn here is already absorbed.
  for (;;) {
    if (Ref seg = tryPinnedFreeList(need)) return finishAlloc(seg, len, need);
    if (Ref seg = tryBumpOn(pinnedCur_, need)) return finishAlloc(seg, len, need);
    {
      MutexLock lk(growMu_);
      const std::uint64_t cur = pinnedCur_.load(std::memory_order_acquire);
      if (curValid(cur) && curOffset(cur) + need <= pool_.blockBytes()) continue;
      try {
        newBlockLocked(need, /*pinned=*/true);
        continue;
      } catch (const OffHeapOutOfMemory&) {
        // Drained data-domain segments can't serve a pinned allocation, but
        // a released dead arena frees pool budget for the retry.
        if (drainMagazinesToFreeList() || releaseDeadArenasLocked() != 0) continue;
      }
    }
    // Pool budget exhausted with nothing reclaimable: degrade to the data
    // domain rather than fail — relocation never touches a header, so a
    // victim block hosting one merely fails its tiling check and the
    // evacuation aborts.  The cost is one unevacuatable block, not safety;
    // tiny-budget (single-arena) configurations depend on this path.
    return alloc(len);
  }
}

bool FirstFitAllocator::parkIfEvacuating(Ref seg) {
  if (!evacuating_[seg.block()].load(std::memory_order_acquire)) return false;
  SpinGuard lk(freeMu_);
  // oaklint: allow(R3, evacuation parking is rare — one entry per cached
  // victim segment, once per evacuation)
  freeList_.push_back(seg);
  freeCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FirstFitAllocator::drainMagazinesToFreeList() {
  if (!magsEnabled_) return false;
  std::vector<Ref> segs;
  if (depot_.drainAll(segs) == 0) return false;
  SpinGuard lk(freeMu_);
  // oaklint: allow(R3, terminal-OOM recovery path, cold by construction)
  freeList_.insert(freeList_.end(), segs.begin(), segs.end());
  freeCount_.fetch_add(segs.size(), std::memory_order_relaxed);
  return true;
}

Ref FirstFitAllocator::finishAlloc(Ref seg, std::uint32_t len, std::uint32_t need) {
  const std::uint32_t block = seg.block();
  [[maybe_unused]] std::byte* base = bases_[block].load(std::memory_order_acquire);
  // The whole segment (header + rounded payload) becomes addressable; the
  // alignment slack past roundUp(len) stays inside the segment, while
  // everything beyond it remains poisoned arena slack.
  OAK_ASAN_UNPOISON(base + seg.offset(), need);
#if OAK_CHECKED
  auto* h = reinterpret_cast<SliceHeader*>(base + seg.offset());
  h->length = len;
  storeU32(h->generation, sliceGen_.fetch_add(1, std::memory_order_relaxed));
  storeU32(h->state, kLiveMagic);
#endif
  const std::uint32_t userOff = seg.offset() + kSliceHeaderBytes;
  std::atomic<std::uint64_t>* map = allocMap_[block].load(std::memory_order_acquire);
  const std::uint32_t g = userOff / kAlign;
  const std::uint64_t prev =
      map[g >> 6].fetch_or(std::uint64_t{1} << (g & 63), std::memory_order_relaxed);
  OAK_CHECK(((prev >> (g & 63)) & 1) == 0,
            "allocator handed out an already-live slice {block=%u off=%u len=%u}",
            block, userOff, len);
  (void)prev;
  outBytes_.fetch_add(need, std::memory_order_relaxed);
  liveBytes_[block].fetch_add(need, std::memory_order_relaxed);
  allocCount_.fetch_add(1, std::memory_order_relaxed);
  return Ref::make(block, userOff, len);
}

Ref FirstFitAllocator::tryBumpOn(std::atomic<std::uint64_t>& cursor,
                                 std::uint32_t need) {
  std::uint64_t cur = cursor.load(std::memory_order_acquire);
  for (;;) {
    if (!curValid(cur)) return Ref{};
    const std::uint64_t off = curOffset(cur);
    if (off + need > pool_.blockBytes()) return Ref{};
    if (cursor.compare_exchange_weak(cur, packCur(curBlock(cur), off + need),
                                     std::memory_order_acq_rel)) {
      return Ref::make(curBlock(cur), static_cast<std::uint32_t>(off), need);
    }
  }
}

Ref FirstFitAllocator::tryFreeList(std::uint32_t need) {
  SpinGuard lk(freeMu_);
  for (std::size_t i = 0; i < freeList_.size(); ++i) {
    Ref seg = freeList_[i];
    if (seg.length() < need) continue;
    // Victim blocks are draining toward release: no new allocation may land
    // in one, or the evacuation tiling check could never close.
    if (evacuating_[seg.block()].load(std::memory_order_relaxed)) continue;
    const std::uint32_t rest = seg.length() - need;
    if (rest >= kAlign) {
      // Split: hand out the prefix, keep the remainder in place.
      freeList_[i] = Ref::make(seg.block(), seg.offset() + need, rest);
      return Ref::make(seg.block(), seg.offset(), need);
    }
    freeList_[i] = freeList_.back();
    freeList_.pop_back();
    freeCount_.fetch_sub(1, std::memory_order_relaxed);
    return seg;  // exact (or nearly exact) fit — hand out the whole segment
  }
  return Ref{};
}

Ref FirstFitAllocator::tryPinnedFreeList(std::uint32_t need) {
  SpinGuard lk(freeMu_);
  for (std::size_t i = 0; i < pinnedFree_.size(); ++i) {
    Ref seg = pinnedFree_[i];
    if (seg.length() < need) continue;
    const std::uint32_t rest = seg.length() - need;
    if (rest >= kAlign) {
      pinnedFree_[i] = Ref::make(seg.block(), seg.offset() + need, rest);
      return Ref::make(seg.block(), seg.offset(), need);
    }
    pinnedFree_[i] = pinnedFree_.back();
    pinnedFree_.pop_back();
    return seg;
  }
  return Ref{};
}

void FirstFitAllocator::newBlockLocked(std::uint32_t need, bool pinned) {
  const std::uint32_t id = pool_.acquire();  // may throw OffHeapOutOfMemory
  // Fresh (or recycled) arenas are all slack: poison everything and let
  // finishAlloc unpoison the slices it hands out.
  OAK_ASAN_POISON(pool_.arena(id).base(), pool_.blockBytes());
  const std::size_t granules = pool_.blockBytes() / kAlign;
  allocMap_[id].store(new std::atomic<std::uint64_t>[(granules + 63) / 64](),
                      std::memory_order_release);
  // Recycled ids must not inherit accounting from a previous life.
  liveBytes_[id].store(0, std::memory_order_relaxed);
  wasteBytes_[id].store(0, std::memory_order_relaxed);
  evacuating_[id].store(false, std::memory_order_relaxed);
  pinned_[id].store(pinned, std::memory_order_release);
  if (pinned) nPinned_.fetch_add(1, std::memory_order_relaxed);
  bases_[id].store(pool_.arena(id).base(), std::memory_order_release);
  owned_.push_back(id);
  nOwned_.fetch_add(1, std::memory_order_relaxed);

  // Salvage the tail of the previous arena into the free list so the switch
  // does not leak the unused suffix.  Tails too small to be worth a
  // free-list entry are recorded as waste so the evacuation tiling check
  // can still prove the old block empty.
  auto& cursor = pinned ? pinnedCur_ : cur_;
  const std::uint64_t old = cursor.exchange(packCur(id, 0), std::memory_order_acq_rel);
  if (curValid(old)) {
    const std::uint64_t off = curOffset(old);
    const std::uint64_t tail = pool_.blockBytes() - off;
    if (tail >= kAlign && tail >= need / 8) {
      SpinGuard lk(freeMu_);
      // oaklint: allow(R3, arena-switch tail salvage runs once per new block)
      (pinned ? pinnedFree_ : freeList_)
          .push_back(Ref::make(curBlock(old), static_cast<std::uint32_t>(off),
                               static_cast<std::uint32_t>(tail)));
      if (!pinned) freeCount_.fetch_add(1, std::memory_order_relaxed);
    } else if (tail > 0) {
      wasteBytes_[curBlock(old)].fetch_add(static_cast<std::uint32_t>(tail),
                                           std::memory_order_relaxed);
    }
  }

  // Carve the emergency reserve out of the first arena that can host it
  // alongside the triggering allocation.  The segment stays raw (the same
  // format the free list holds) and invisible to alloc() until
  // releaseEmergencyReserve() posts it.
  if (!pinned && reserveBytes_ != 0 && !reserveCarved_ &&
      reserveBytes_ + need <= pool_.blockBytes()) {
    if (Ref seg = tryBump(reserveBytes_)) {
      SpinGuard lk(freeMu_);
      reserveSeg_ = seg;
      reserveCarved_ = true;
    }
  }
}

bool FirstFitAllocator::releaseEmergencyReserve() {
  SpinGuard lk(freeMu_);
  if (reserveSeg_.isNull()) return false;
  // oaklint: allow(R3, reserve release happens once, under terminal pressure)
  freeList_.push_back(reserveSeg_);
  freeCount_.fetch_add(1, std::memory_order_relaxed);
  reserveSeg_ = Ref{};
  return true;
}

bool FirstFitAllocator::emergencyReserveAvailable() const {
  SpinGuard lk(freeMu_);
  return !reserveSeg_.isNull();
}

bool FirstFitAllocator::free(Ref ref) {
  if (ref.isNull()) {
    OAK_CHECK(false, "free of the null off-heap reference");
    return false;
  }
  const std::uint32_t block = ref.block();
  std::atomic<std::uint64_t>* map =
      block < Ref::kMaxBlocks ? allocMap_[block].load(std::memory_order_acquire)
                              : nullptr;
  if (map == nullptr || ref.offset() < kSliceHeaderBytes) {
    OAK_CHECK(false, "free of foreign ref {block=%u off=%u len=%u}", block,
              ref.offset(), ref.length());
    return false;
  }
  // Claim the allocation-start bit; losing it means this slice is already
  // free (or a racing free won) — reject without touching the free list.
  const std::uint32_t g = ref.offset() / kAlign;
  const std::uint64_t bit = std::uint64_t{1} << (g & 63);
  const std::uint64_t prev = map[g >> 6].fetch_and(~bit, std::memory_order_relaxed);
  if ((prev & bit) == 0) {
    OAK_CHECK(false, "double-free of off-heap slice {block=%u off=%u len=%u}",
              block, ref.offset(), ref.length());
    return false;
  }
#if OAK_CHECKED
  SliceHeader* h = sliceHeader(ref);
  const std::uint32_t state = loadU32(h->state);
  OAK_CHECK(state == kLiveMagic,
            "free of slice with corrupt header {block=%u off=%u len=%u state=%#x}",
            block, ref.offset(), ref.length(), state);
  OAK_CHECK(h->length == ref.length(),
            "free with mismatched length {block=%u off=%u}: allocated %u, freeing %u "
            "(stale or forged reference, generation=%u)",
            block, ref.offset(), h->length, ref.length(), loadU32(h->generation));
  storeU32(h->state, kFreeMagic);
#endif
  // Reconstitute the full segment the allocation occupied.  Stats count
  // only successful frees — every rejection above returned before touching
  // freeOps_/freedBytes_.  Pinned-domain slices never took the class
  // rounding (allocPinned carves exact need), so their geometry is `need`;
  // data-domain magazine-eligible slices were carved at their class size
  // even when they arrive on the flat path below (evacuating-block bypass).
  const std::uint32_t need = roundUp(ref.length()) + kSliceHeaderBytes;
  const bool pinnedBlk = pinned_[block].load(std::memory_order_acquire);
  const bool classCarved = !pinnedBlk && magsEnabled_ && SizeClasses::eligible(need);
  if (classCarved && !evacuating_[block].load(std::memory_order_acquire)) {
    // Magazine path: the allocation was carved at its class size, so the
    // same mapping reconstitutes it exactly.  The entire payload
    // (including class slack) is poisoned — cached slices trap under ASan
    // until the depot recycles them; the freed header stays readable so
    // OakSan can keep diagnosing use-after-free.
    const std::uint32_t cls = SizeClasses::classFor(need);
    const std::uint32_t segBytes = SizeClasses::bytesFor(cls);
    OAK_ASAN_POISON(bases_[block].load(std::memory_order_acquire) + ref.offset(),
                    segBytes - kSliceHeaderBytes);
    outBytes_.fetch_sub(segBytes, std::memory_order_relaxed);
    liveBytes_[block].fetch_sub(segBytes, std::memory_order_relaxed);
    freeOps_.fetch_add(1, std::memory_order_relaxed);
    freedBytes_.fetch_add(segBytes, std::memory_order_relaxed);
    depot_.cache(Ref::make(block, ref.offset() - kSliceHeaderBytes, segBytes),
                 cls, ThreadRegistry::id());
    return true;
  }
  // Flat path: pinned slices, oversized/cold slices, and victim-block
  // slices (which must reach the free list directly so the evacuation
  // tiling check can see them).
  const std::uint32_t segBytes =
      classCarved ? SizeClasses::bytesFor(SizeClasses::classFor(need)) : need;
  OAK_ASAN_POISON(bases_[block].load(std::memory_order_acquire) + ref.offset(),
                  segBytes - kSliceHeaderBytes);
  outBytes_.fetch_sub(segBytes, std::memory_order_relaxed);
  liveBytes_[block].fetch_sub(segBytes, std::memory_order_relaxed);
  freeOps_.fetch_add(1, std::memory_order_relaxed);
  freedBytes_.fetch_add(segBytes, std::memory_order_relaxed);
  SpinGuard lk(freeMu_);
  std::vector<Ref>& list = pinnedBlk ? pinnedFree_ : freeList_;
  // oaklint: allow(R3, free-list vector growth is amortized; magazines absorb
  // the hot size classes so this path is the cold spill)
  list.push_back(Ref::make(block, ref.offset() - kSliceHeaderBytes, segBytes));
  if (!pinnedBlk) freeCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

#if OAK_CHECKED
void FirstFitAllocator::validateCachedSegment(Ref seg) const noexcept {
  const auto* h = reinterpret_cast<const SliceHeader*>(
      bases_[seg.block()].load(std::memory_order_acquire) + seg.offset());
  const std::uint32_t state = loadU32(h->state);
  if (state != kFreeMagic) {
    oakCheckFail(__FILE__, __LINE__,
                 "magazine cache corruption: cached segment {block=%u off=%u "
                 "len=%u} header state=%#x (expected freed slice)",
                 seg.block(), seg.offset(), seg.length(), state);
  }
}
#endif

#if OAK_CHECKED
void FirstFitAllocator::validateLive(Ref ref, const char* what) const noexcept {
  if (ref.isNull()) {
    oakCheckFail(__FILE__, __LINE__, "%s of the null off-heap reference", what);
  }
  const std::uint32_t block = ref.block();
  const std::byte* base = block < Ref::kMaxBlocks
                              ? bases_[block].load(std::memory_order_acquire)
                              : nullptr;
  if (base == nullptr || ref.offset() < kSliceHeaderBytes) {
    oakCheckFail(__FILE__, __LINE__,
                 "%s of foreign ref {block=%u off=%u len=%u}: arena not owned "
                 "by this allocator",
                 what, block, ref.offset(), ref.length());
  }
  const SliceHeader* h = sliceHeader(ref);
  const std::uint32_t state = loadU32(h->state);
  if (state == kFreeMagic) {
    oakCheckFail(__FILE__, __LINE__,
                 "use-after-free: %s of freed slice {block=%u off=%u len=%u} "
                 "(freed generation=%u, arena base=%p)",
                 what, block, ref.offset(), ref.length(), loadU32(h->generation),
                 static_cast<const void*>(base));
  }
  if (state != kLiveMagic) {
    oakCheckFail(__FILE__, __LINE__,
                 "wild reference: %s of {block=%u off=%u len=%u} which is not an "
                 "allocation start (header state=%#x, arena base=%p)",
                 what, block, ref.offset(), ref.length(), state,
                 static_cast<const void*>(base));
  }
  if (ref.length() > h->length) {
    oakCheckFail(__FILE__, __LINE__,
                 "stale handle: %s of {block=%u off=%u len=%u} but the live slice "
                 "here is only %u bytes (generation=%u — the slice was recycled)",
                 what, block, ref.offset(), ref.length(), h->length,
                 loadU32(h->generation));
  }
}

std::uint32_t FirstFitAllocator::generationOf(Ref ref) const noexcept {
  validateLive(ref, "generationOf");
  return loadU32(sliceHeader(ref)->generation);
}

void FirstFitAllocator::assertLiveGeneration(Ref ref,
                                             std::uint32_t expectedGen) const noexcept {
  validateLive(ref, "assertLiveGeneration");
  const std::uint32_t actual = loadU32(sliceHeader(ref)->generation);
  if (actual != expectedGen) {
    oakCheckFail(__FILE__, __LINE__,
                 "ABA/stale handle: {block=%u off=%u len=%u} expected generation %u "
                 "but the slice now carries generation %u (recycled underneath the "
                 "holder)",
                 ref.block(), ref.offset(), ref.length(), expectedGen, actual);
  }
}
#endif

std::uint64_t FirstFitAllocator::freeListLength() const {
  SpinGuard lk(freeMu_);
  return freeList_.size();
}

std::vector<FirstFitAllocator::BlockOccupancy> FirstFitAllocator::blockOccupancy() {
  MutexLock lk(growMu_);
  const std::uint64_t cur = cur_.load(std::memory_order_acquire);
  const std::uint64_t pcur = pinnedCur_.load(std::memory_order_acquire);
  std::vector<BlockOccupancy> out;
  out.reserve(owned_.size());
  for (std::uint32_t id : owned_) {
    out.push_back({id, liveBytes_[id].load(std::memory_order_relaxed),
                   pinned_[id].load(std::memory_order_relaxed),
                   evacuating_[id].load(std::memory_order_relaxed),
                   (curValid(cur) && curBlock(cur) == id) ||
                       (curValid(pcur) && curBlock(pcur) == id)});
  }
  return out;
}

bool FirstFitAllocator::beginEvacuate(std::uint32_t block) {
  MutexLock lk(growMu_);
  if (block >= Ref::kMaxBlocks ||
      bases_[block].load(std::memory_order_acquire) == nullptr) {
    return false;
  }
  if (pinned_[block].load(std::memory_order_relaxed)) return false;
  const std::uint64_t cur = cur_.load(std::memory_order_acquire);
  if (curValid(cur) && curBlock(cur) == block) return false;
  {
    SpinGuard g(freeMu_);
    if (!reserveSeg_.isNull() && reserveSeg_.block() == block) return false;
  }
  if (evacuating_[block].exchange(true, std::memory_order_acq_rel)) return false;
  nEvacuating_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FirstFitAllocator::abortEvacuate(std::uint32_t block) {
  if (block >= Ref::kMaxBlocks) return;
  if (evacuating_[block].exchange(false, std::memory_order_acq_rel)) {
    nEvacuating_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool FirstFitAllocator::finishEvacuate(std::uint32_t block) {
  MutexLock lk(growMu_);
  if (block >= Ref::kMaxBlocks ||
      !evacuating_[block].load(std::memory_order_acquire)) {
    return false;
  }
  {
    SpinGuard g(freeMu_);
    // The tiling check: every byte of the arena must be accounted for by a
    // free segment or recorded waste.  A live slice, an in-flight carve, or
    // a segment still cached in a magazine all leave a hole.
    std::uint64_t sum = wasteBytes_[block].load(std::memory_order_relaxed);
    for (Ref s : freeList_) {
      if (s.block() == block) sum += s.length();
    }
    if (sum != pool_.blockBytes()) return false;
    purgeFreeSegmentsLocked(block);
  }
  releaseBlockLocked(block);
  return true;
}

std::size_t FirstFitAllocator::releaseDeadArenas() {
  MutexLock lk(growMu_);
  return releaseDeadArenasLocked();
}

std::size_t FirstFitAllocator::releaseDeadArenasLocked() {
  const std::uint64_t cur = cur_.load(std::memory_order_acquire);
  const std::uint64_t pcur = pinnedCur_.load(std::memory_order_acquire);
  std::vector<std::uint32_t> dead;
  {
    SpinGuard g(freeMu_);
    // One pass over both lists accumulating per-block free bytes, then the
    // same tiling test finishEvacuate() uses.
    std::vector<std::uint64_t> sums(Ref::kMaxBlocks, 0);
    for (Ref s : freeList_) sums[s.block()] += s.length();
    for (Ref s : pinnedFree_) sums[s.block()] += s.length();
    for (std::uint32_t id : owned_) {
      if (curValid(cur) && curBlock(cur) == id) continue;
      if (curValid(pcur) && curBlock(pcur) == id) continue;
      // Evacuating blocks belong to an in-progress compaction pass; their
      // release (or abort) is that pass's call to make.
      if (evacuating_[id].load(std::memory_order_relaxed)) continue;
      if (!reserveSeg_.isNull() && reserveSeg_.block() == id) continue;
      if (sums[id] + wasteBytes_[id].load(std::memory_order_relaxed) ==
          pool_.blockBytes()) {
        // oaklint: allow(R3, terminal-OOM recovery path, cold by construction)
        dead.push_back(id);
      }
    }
    for (std::uint32_t id : dead) purgeFreeSegmentsLocked(id);
  }
  for (std::uint32_t id : dead) releaseBlockLocked(id);
  return dead.size();
}

void FirstFitAllocator::purgeFreeSegmentsLocked(std::uint32_t id) {
  const auto drop = [id](std::vector<Ref>& list) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < list.size(); ++r) {
      if (list[r].block() != id) list[w++] = list[r];
    }
    const std::size_t removed = list.size() - w;
    list.resize(w);
    return removed;
  };
  const std::size_t removed = drop(freeList_);
  if (removed != 0) freeCount_.fetch_sub(removed, std::memory_order_relaxed);
  drop(pinnedFree_);
}

void FirstFitAllocator::releaseBlockLocked(std::uint32_t id) {
  // The arena goes back to the pool poisoned; whoever re-acquires it (this
  // allocator or a sibling sharing the pool) re-poisons on acquisition
  // anyway, and in between any touch traps.
  OAK_ASAN_POISON(bases_[id].load(std::memory_order_acquire), pool_.blockBytes());
  bases_[id].store(nullptr, std::memory_order_release);
  delete[] allocMap_[id].exchange(nullptr, std::memory_order_acq_rel);
  liveBytes_[id].store(0, std::memory_order_relaxed);
  wasteBytes_[id].store(0, std::memory_order_relaxed);
  if (pinned_[id].exchange(false, std::memory_order_acq_rel)) {
    nPinned_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (evacuating_[id].exchange(false, std::memory_order_acq_rel)) {
    nEvacuating_.fetch_sub(1, std::memory_order_relaxed);
  }
  owned_.erase(std::find(owned_.begin(), owned_.end(), id));
  nOwned_.fetch_sub(1, std::memory_order_relaxed);
  pool_.release(id);
}

}  // namespace oak::mem
