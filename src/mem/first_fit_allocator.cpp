#include "mem/first_fit_allocator.hpp"

#include <cassert>

#include "common/error.hpp"

namespace oak::mem {

namespace {
constexpr std::uint64_t packCur(std::uint32_t block, std::uint64_t offset) {
  return (static_cast<std::uint64_t>(block + 1) << 40) | offset;
}
constexpr bool curValid(std::uint64_t cur) { return (cur >> 40) != 0; }
constexpr std::uint32_t curBlock(std::uint64_t cur) {
  return static_cast<std::uint32_t>(cur >> 40) - 1;
}
constexpr std::uint64_t curOffset(std::uint64_t cur) {
  return cur & ((std::uint64_t{1} << 40) - 1);
}
}  // namespace

FirstFitAllocator::FirstFitAllocator(BlockPool& pool) : pool_(pool) {
  for (auto& b : bases_) b.store(nullptr, std::memory_order_relaxed);
}

FirstFitAllocator::~FirstFitAllocator() {
  for (std::uint32_t id : owned_) pool_.release(id);
}

Ref FirstFitAllocator::alloc(std::uint32_t len) {
  // Internal bookkeeping is 8-byte-granular, but the returned reference
  // carries the *exact* requested length: callers (key comparisons, value
  // sizes) must never observe alignment padding.
  const std::uint32_t need = len < kAlign ? kAlign : ((len + kAlign - 1) & ~(kAlign - 1));
  if (need > pool_.blockBytes() || need >= Ref::kMaxLength) {
    throw OakUsageError("allocation larger than arena size");
  }
  for (;;) {
    // §3.2: first fit from the flat free list; the bump pointer only serves
    // virgin space.  A relaxed counter keeps the common empty-list case off
    // the lock.
    if (freeCount_.load(std::memory_order_relaxed) != 0) {
      if (Ref r = tryFreeList(need)) {
        outBytes_.fetch_add(roundUp(r.length()), std::memory_order_relaxed);
        allocCount_.fetch_add(1, std::memory_order_relaxed);
        return Ref::make(r.block(), r.offset(), len);
      }
    }
    if (Ref r = tryBump(need)) {
      outBytes_.fetch_add(need, std::memory_order_relaxed);
      allocCount_.fetch_add(1, std::memory_order_relaxed);
      return Ref::make(r.block(), r.offset(), len);
    }
    std::lock_guard<std::mutex> lk(growMu_);
    // Re-check under the lock: another thread may have installed a new arena.
    const std::uint64_t cur = cur_.load(std::memory_order_acquire);
    if (curValid(cur) && curOffset(cur) + need <= pool_.blockBytes()) continue;
    newBlockLocked(need);
  }
}

Ref FirstFitAllocator::tryBump(std::uint32_t need) {
  std::uint64_t cur = cur_.load(std::memory_order_acquire);
  for (;;) {
    if (!curValid(cur)) return Ref{};
    const std::uint64_t off = curOffset(cur);
    if (off + need > pool_.blockBytes()) return Ref{};
    if (cur_.compare_exchange_weak(cur, packCur(curBlock(cur), off + need),
                                   std::memory_order_acq_rel)) {
      return Ref::make(curBlock(cur), static_cast<std::uint32_t>(off), need);
    }
  }
}

Ref FirstFitAllocator::tryFreeList(std::uint32_t need) {
  std::lock_guard<SpinLock> lk(freeMu_);
  for (std::size_t i = 0; i < freeList_.size(); ++i) {
    Ref seg = freeList_[i];
    if (seg.length() < need) continue;
    const std::uint32_t rest = seg.length() - need;
    if (rest >= kAlign) {
      // Split: hand out the prefix, keep the remainder in place.
      freeList_[i] = Ref::make(seg.block(), seg.offset() + need, rest);
      return Ref::make(seg.block(), seg.offset(), need);
    }
    freeList_[i] = freeList_.back();
    freeList_.pop_back();
    freeCount_.fetch_sub(1, std::memory_order_relaxed);
    return seg;  // exact (or nearly exact) fit — hand out the whole segment
  }
  return Ref{};
}

void FirstFitAllocator::newBlockLocked(std::uint32_t need) {
  const std::uint32_t id = pool_.acquire();  // may throw OffHeapOutOfMemory
  bases_[id].store(pool_.arena(id).base(), std::memory_order_release);
  owned_.push_back(id);
  nOwned_.fetch_add(1, std::memory_order_relaxed);

  // Salvage the tail of the previous arena into the free list so the switch
  // does not leak the unused suffix.
  const std::uint64_t old = cur_.exchange(packCur(id, 0), std::memory_order_acq_rel);
  if (curValid(old)) {
    const std::uint64_t off = curOffset(old);
    const std::uint64_t tail = pool_.blockBytes() - off;
    if (tail >= kAlign && tail >= need / 8) {
      std::lock_guard<SpinLock> lk(freeMu_);
      freeList_.push_back(Ref::make(curBlock(old), static_cast<std::uint32_t>(off),
                                    static_cast<std::uint32_t>(tail)));
      freeCount_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void FirstFitAllocator::free(Ref ref) {
  assert(!ref.isNull());
  // Reconstitute the full (rounded) segment the allocation occupied.
  const std::uint32_t whole = roundUp(ref.length());
  outBytes_.fetch_sub(whole, std::memory_order_relaxed);
  freeOps_.fetch_add(1, std::memory_order_relaxed);
  freedBytes_.fetch_add(whole, std::memory_order_relaxed);
  std::lock_guard<SpinLock> lk(freeMu_);
  freeList_.push_back(Ref::make(ref.block(), ref.offset(), whole));
  freeCount_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FirstFitAllocator::freeListLength() const {
  std::lock_guard<SpinLock> lk(freeMu_);
  return freeList_.size();
}

}  // namespace oak::mem
