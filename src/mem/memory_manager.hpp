// Oak's memory manager (§3.2): allocate-and-initialize for keys and values,
// footprint accounting, and pointer translation.  It is a thin composition
// over the first-fit allocator; the value header layout lives in
// oak/value.hpp because it carries the concurrency-control state (§3.3).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/checked.hpp"
#include "mem/first_fit_allocator.hpp"
#include "obs/stats.hpp"
#include "sync/ebr.hpp"

namespace oak::mem {

class MemoryManager {
 public:
  explicit MemoryManager(BlockPool& pool, std::uint32_t emergencyReserveBytes = 0)
      : alloc_(pool, emergencyReserveBytes) {}

  /// OakSan: ties this manager's chunk-metadata accesses (off-heap key
  /// reads) to an EBR domain.  Checked builds abort when keyBytes() runs on
  /// a thread that is not inside a Guard on that domain — the stale-chunk
  /// hazard the epoch protocol exists to prevent.  Value payload access is
  /// deliberately exempt: it is protected by the header lock + generation,
  /// not by epochs.
  void bindGuardDomain(const sync::Ebr* ebr) noexcept {
#if OAK_CHECKED
    guardDomain_ = ebr;
#else
    (void)ebr;
#endif
  }

  /// allocateKey(key): copies the serialized key off-heap.  Keys are
  /// immutable (§2.1), so the returned reference is never rewritten.
  Ref allocateKey(ByteSpan serializedKey) {
    Ref r = alloc_.alloc(static_cast<std::uint32_t>(serializedKey.size()));
    copyBytes({alloc_.translate(r), r.length()}, serializedKey);
    return r;
  }

  /// Raw allocation (value payloads, version nodes, baseline cells).
  Ref allocRaw(std::uint32_t len) { return alloc_.alloc(len); }

  /// Pinned allocation: the slice's physical address is stable for its whole
  /// life (never an evacuation victim).  Value headers — which escape EBR
  /// guards as raw pointers inside OakRBuffer — live here.
  Ref allocPinned(std::uint32_t len) { return alloc_.allocPinned(len); }

  /// Returns false (or aborts in checked builds) when `r` was already freed
  /// or never allocated — see FirstFitAllocator::free.
  bool free(Ref r) { return alloc_.free(r); }

  std::byte* translate(Ref r) const noexcept { return alloc_.translate(r); }

  ByteSpan keyBytes(Ref keyRef) const noexcept {
#if OAK_CHECKED
    // Off-heap keys live in chunk metadata reclaimed through EBR; reading
    // one outside a guard races reclamation.  (Bound lazily by the map —
    // standalone managers, e.g. in allocator unit tests, stay unchecked.)
    OAK_CHECK(guardDomain_ == nullptr || guardDomain_->currentThreadGuarded(),
              "off-heap key read {block=%u off=%u len=%u} outside an active "
              "epoch guard",
              keyRef.block(), keyRef.offset(), keyRef.length());
#endif
    return {alloc_.translate(keyRef), keyRef.length()};
  }

  std::size_t footprintBytes() const noexcept { return alloc_.footprintBytes(); }
  std::size_t allocatedBytes() const noexcept { return alloc_.allocatedBytes(); }
  std::uint64_t allocCount() const noexcept { return alloc_.allocCount(); }

  /// Allocator gauge snapshot for the obs layer (§3.2 footprint API).
  obs::AllocStats stats() const {
    obs::AllocStats s;
    s.footprintBytes = alloc_.footprintBytes();
    s.allocatedBytes = alloc_.allocatedBytes();
    s.fragmentedBytes =
        s.footprintBytes > s.allocatedBytes ? s.footprintBytes - s.allocatedBytes : 0;
    s.allocCount = alloc_.allocCount();
    s.freeCount = alloc_.freeOpCount();
    s.freedBytes = alloc_.freedBytes();
    s.freeListLength = alloc_.freeListLength();
    s.arenaBlocks = alloc_.ownedBlocks();
    s.pinnedBlocks = alloc_.pinnedBlocks();
    s.evacuatingBlocks = alloc_.evacuatingBlocks();
    const mem::MagazineDepot::Stats mag = alloc_.magazineStats();
    s.magHits = mag.hits;
    s.magGlobalHits = mag.globalHits;
    s.magMisses = mag.misses;
    s.magFlushes = mag.flushes;
    s.magDrains = mag.drains;
    s.magCachedSlices = mag.cachedSlices;
    s.magCachedBytes = mag.cachedBytes;
    s.magClasses.reserve(mag.classes.size());
    for (const auto& c : mag.classes) {
      s.magClasses.push_back({c.classBytes, c.cachedSlices});
    }
    return s;
  }

  /// Degraded-path escape hatch: posts the withheld emergency-reserve
  /// segment (if any) to the free list.  See FirstFitAllocator.
  bool releaseEmergencyReserve() { return alloc_.releaseEmergencyReserve(); }
  bool emergencyReserveAvailable() const { return alloc_.emergencyReserveAvailable(); }

  FirstFitAllocator& allocator() noexcept { return alloc_; }

 private:
  FirstFitAllocator alloc_;
#if OAK_CHECKED
  const sync::Ebr* guardDomain_ = nullptr;
#endif
};

}  // namespace oak::mem
