#include "mem/block_pool.hpp"

#include "common/error.hpp"
#include "common/fault.hpp"

namespace oak::mem {

BlockPool::BlockPool(Config cfg) : cfg_(cfg) {
  if (cfg_.blockBytes > (std::size_t{1} << Ref::kOffsetBits)) {
    throw OakUsageError("block size exceeds Ref offset range (64 MiB)");
  }
  // Full capacity up front (kMaxBlocks pointers ≈ 32 KiB) so arena(id) can
  // read the vector without mu_: growth can never reallocate the buffer out
  // from under a concurrent reader.
  arenas_.reserve(Ref::kMaxBlocks);
}

std::uint32_t BlockPool::acquire() {
  OAK_FAULT_POINT("pool.acquire", OffHeapOutOfMemory);
  MutexLock lk(mu_);
  if (!freeIds_.empty()) {
    const std::uint32_t id = freeIds_.back();
    freeIds_.pop_back();
    acquired_ += cfg_.blockBytes;
    return id;
  }
  if (acquired_ + cfg_.blockBytes > cfg_.budgetBytes) throw OffHeapOutOfMemory();
  if (arenas_.size() >= Ref::kMaxBlocks) throw OffHeapOutOfMemory();
  arenas_.push_back(std::make_unique<Arena>(cfg_.blockBytes));
  acquired_ += cfg_.blockBytes;
  return static_cast<std::uint32_t>(arenas_.size() - 1);
}

void BlockPool::release(std::uint32_t id) {
  MutexLock lk(mu_);
  freeIds_.push_back(id);
  acquired_ -= cfg_.blockBytes;
}

std::size_t BlockPool::acquiredBytes() const {
  MutexLock lk(mu_);
  return acquired_;
}

BlockPool& BlockPool::global() {
  static BlockPool pool{Config{}};
  return pool;
}

}  // namespace oak::mem
