#include "mem/block_pool.hpp"

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace oak::mem {

BlockPool::BlockPool(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.blockBytes > (std::size_t{1} << Ref::kOffsetBits)) {
    throw OakUsageError("block size exceeds Ref offset range (64 MiB)");
  }
  // Full capacity up front (kMaxBlocks pointers ≈ 32 KiB) so arena(id) can
  // read the vector without mu_: growth can never reallocate the buffer out
  // from under a concurrent reader.
  arenas_.reserve(Ref::kMaxBlocks);
  if (!cfg_.storageDir.empty()) {
    // Arena files never outlive the process usefully (checkpoint + WAL are
    // the source of truth), so stale ones from a previous run are removed —
    // keeping them would only resurrect garbage bytes under fresh arenas.
    std::error_code ec;
    std::filesystem::create_directories(cfg_.storageDir, ec);
    for (const auto& e : std::filesystem::directory_iterator(cfg_.storageDir, ec)) {
      unsigned long long id = 0;
      if (std::sscanf(e.path().filename().string().c_str(),
                      "arena-%llu.oakblk", &id) == 1) {
        std::filesystem::remove(e.path(), ec);
      }
    }
  }
}

std::uint32_t BlockPool::acquire() {
  OAK_FAULT_POINT("pool.acquire", OffHeapOutOfMemory);
  MutexLock lk(mu_);
  if (!freeIds_.empty()) {
    const std::uint32_t id = freeIds_.back();
    freeIds_.pop_back();
    acquired_ += cfg_.blockBytes;
    return id;
  }
  if (acquired_ + cfg_.blockBytes > cfg_.budgetBytes) throw OffHeapOutOfMemory();
  if (arenas_.size() >= Ref::kMaxBlocks) throw OffHeapOutOfMemory();
  if (cfg_.storageDir.empty()) {
    arenas_.push_back(std::make_unique<Arena>(cfg_.blockBytes));
  } else {
    char name[32];
    std::snprintf(name, sizeof(name), "arena-%llu.oakblk",
                  static_cast<unsigned long long>(arenas_.size()));
    arenas_.push_back(std::make_unique<Arena>(cfg_.storageDir + "/" + name,
                                              cfg_.blockBytes));
  }
  acquired_ += cfg_.blockBytes;
  return static_cast<std::uint32_t>(arenas_.size() - 1);
}

void BlockPool::release(std::uint32_t id) {
  MutexLock lk(mu_);
  freeIds_.push_back(id);
  acquired_ -= cfg_.blockBytes;
}

std::size_t BlockPool::acquiredBytes() const {
  MutexLock lk(mu_);
  return acquired_;
}

BlockPool& BlockPool::global() {
  static BlockPool pool{Config{}};
  return pool;
}

}  // namespace oak::mem
