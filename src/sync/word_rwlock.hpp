// WordRwLock — the value-header concurrency control of §3.3.
//
// "Oak allocates headers to all values at the beginning of their buffers.
//  Oak's default concurrency control mechanism uses a read-write lock (in
//  the header) to ensure that these methods execute atomically ... The
//  header also includes a bit indicating whether the value is deleted."
//
// One 32-bit word:  [ readers:30 | writer:1 | deleted:1 ]
//
// The deleted bit is set exactly once, while holding the write lock, and is
// never cleared (headers are not recycled under the default reclamation
// policy), so lock acquisition can fail-fast with Deleted.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/spin.hpp"

namespace oak::sync {

enum class LockResult : std::uint8_t { Acquired, Deleted };

class WordRwLock {
 public:
  static constexpr std::uint32_t kDeleted = 1u;
  static constexpr std::uint32_t kWriter = 2u;
  static constexpr std::uint32_t kReader = 4u;  // reader count increment

  /// Blocks while a writer holds the lock; fails if the value is deleted.
  LockResult acquireRead() noexcept {
    Backoff b;
    std::uint32_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      if (w & kDeleted) return LockResult::Deleted;
      if (w & kWriter) {
        b.pause();
        w = word_.load(std::memory_order_acquire);
        continue;
      }
      if (word_.compare_exchange_weak(w, w + kReader, std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return LockResult::Acquired;
      }
    }
  }

  void releaseRead() noexcept { word_.fetch_sub(kReader, std::memory_order_release); }

  /// Blocks while readers or another writer are inside; fails if deleted.
  LockResult acquireWrite() noexcept {
    Backoff b;
    std::uint32_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      if (w & kDeleted) return LockResult::Deleted;
      if (w != 0) {  // readers or writer present
        b.pause();
        w = word_.load(std::memory_order_acquire);
        continue;
      }
      if (word_.compare_exchange_weak(w, kWriter, std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return LockResult::Acquired;
      }
    }
  }

  void releaseWrite() noexcept { word_.fetch_and(~kWriter, std::memory_order_release); }

  /// Marks the value deleted.  Caller must hold the write lock; the bit is
  /// released together with the write lock by the subsequent releaseWrite().
  void setDeleted() noexcept { word_.fetch_or(kDeleted, std::memory_order_release); }

  /// Lock-free observation of the deleted flag (v.isDeleted() in the paper).
  bool isDeleted() const noexcept {
    return (word_.load(std::memory_order_acquire) & kDeleted) != 0;
  }

  /// Raw word for diagnostics/tests.
  std::uint32_t raw() const noexcept { return word_.load(std::memory_order_relaxed); }

  /// Reopens a recycled lock (header pool only; callers guarantee no thread
  /// legitimately holds it — stale probes fail their generation check).
  void resetOpen() noexcept { word_.store(0, std::memory_order_release); }

  /// Marks deleted without holding the lock (never-published headers only).
  void markDeletedRaw() noexcept { word_.store(kDeleted, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> word_{0};
};

/// RAII guards.
class ReadGuard {
 public:
  explicit ReadGuard(WordRwLock& l) noexcept : lock_(&l) {
    ok_ = (l.acquireRead() == LockResult::Acquired);
  }
  ~ReadGuard() {
    if (ok_) lock_->releaseRead();
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  bool acquired() const noexcept { return ok_; }

 private:
  WordRwLock* lock_;
  bool ok_;
};

class WriteGuard {
 public:
  explicit WriteGuard(WordRwLock& l) noexcept : lock_(&l) {
    ok_ = (l.acquireWrite() == LockResult::Acquired);
  }
  ~WriteGuard() {
    if (ok_) lock_->releaseWrite();
  }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;
  bool acquired() const noexcept { return ok_; }

 private:
  WordRwLock* lock_;
  bool ok_;
};

}  // namespace oak::sync
