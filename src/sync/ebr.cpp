#include "sync/ebr.hpp"

#include "common/fault.hpp"

namespace oak::sync {

Ebr::Ebr() = default;

Ebr::~Ebr() { drainAll(); }

void Ebr::enter(std::uint32_t tid) noexcept {
  Slot& s = slots_[tid];
  const std::uint32_t depth = s.depth.load(std::memory_order_relaxed);
  if (depth == 0) {
    // seq_cst: the epoch pin must be visible before any shared read the
    // critical section performs.
    s.epoch.store(globalEpoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
  }
  s.depth.store(depth + 1, std::memory_order_relaxed);
}

void Ebr::exit(std::uint32_t tid) noexcept {
  Slot& s = slots_[tid];
  const std::uint32_t depth = s.depth.load(std::memory_order_relaxed);
  OAK_CHECK(depth != 0, "epoch guard exit without a matching enter (tid=%u)", tid);
  if (depth == 1) {
    // Everything this critical section read or wrote happens-before any
    // reclamation that observes the unpin; make the edge explicit for TSan
    // (the deleter side pairs with an acquire on `this`).
    OAK_TSAN_RELEASE(this);
    s.epoch.store(kInactive, std::memory_order_release);
  }
  s.depth.store(depth - 1, std::memory_order_relaxed);
}

void Ebr::retire(void* ptr, void (*deleter)(void*, void*), void* ctx) {
  // Protocol: a node may only be retired after it was unlinked inside the
  // retiring thread's own critical section — otherwise a freshly arriving
  // reader could still find it and the two-epoch argument collapses.
  OAK_CHECK(currentThreadGuarded(),
            "retire(%p) outside an active epoch guard (the unlink is not "
            "protected)",
            ptr);
  // The unlink happens-before the deferred deleter run (paired with the
  // acquire in tryAdvanceAndReclaim/drainAll).
  OAK_TSAN_RELEASE(this);
  const std::uint64_t epoch = globalEpoch_.load(std::memory_order_seq_cst);
  {
    MutexLock lk(retMu_);
#if OAK_CHECKED
    const bool fresh = pendingSet_.insert(ptr).second;
    OAK_CHECK(fresh, "double-retire of %p (already pending reclamation)", ptr);
#endif
    retired_.push_back(Retired{ptr, deleter, ctx, epoch});
  }
  pendingRetired_.fetch_add(1, std::memory_order_relaxed);
  // Amortize epoch advancement: every few retirements, try to advance.
  if (retireTicks_.fetch_add(1, std::memory_order_relaxed) % 64 == 0) {
    tryAdvanceAndReclaim();
  }
}

void Ebr::tryAdvanceAndReclaim() {
  // Chaos site: a firing schedule models a stalled reclaimer (straggler
  // thread, preempted advance) — retirement keeps accumulating while the
  // epoch stays put, which is exactly how EBR degrades in production.
  if (OAK_FAULT_BRANCH("ebr.advance")) return;
  const std::uint64_t e = globalEpoch_.load(std::memory_order_seq_cst);
  const std::uint32_t hw = ThreadRegistry::highWater();
  for (std::uint32_t i = 0; i < hw; ++i) {
    const std::uint64_t se = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (se != kInactive && se < e) return;  // a straggler pins an old epoch
  }
  std::uint64_t expected = e;
  globalEpoch_.compare_exchange_strong(expected, e + 1, std::memory_order_seq_cst);

  // Reclaim everything retired at least two epochs before the current one:
  // no active thread can still observe those nodes.
  const std::uint64_t cur = globalEpoch_.load(std::memory_order_seq_cst);
  std::vector<Retired> ready;
  {
    MutexLock lk(retMu_);
    std::size_t w = 0;
    for (std::size_t r = 0; r < retired_.size(); ++r) {
      if (retired_[r].epoch + 2 <= cur) {
        ready.push_back(retired_[r]);
#if OAK_CHECKED
        pendingSet_.erase(retired_[r].ptr);
#endif
      } else {
        retired_[w++] = retired_[r];
      }
    }
    retired_.resize(w);
  }
  if (!ready.empty()) {
    // Pair with the releases in exit()/retire(): every critical section that
    // could have touched these nodes happens-before their destruction.
    OAK_TSAN_ACQUIRE(this);
    pendingRetired_.fetch_sub(ready.size(), std::memory_order_relaxed);
    for (const Retired& r : ready) r.deleter(r.ptr, r.ctx);
  }
}

std::uint64_t Ebr::epochLag() const noexcept {
  const std::uint64_t e = globalEpoch_.load(std::memory_order_seq_cst);
  std::uint64_t oldest = kInactive;
  const std::uint32_t hw = ThreadRegistry::highWater();
  for (std::uint32_t i = 0; i < hw; ++i) {
    const std::uint64_t se = slots_[i].epoch.load(std::memory_order_relaxed);
    if (se != kInactive && se < oldest) oldest = se;
  }
  if (oldest == kInactive || oldest >= e) return 0;
  return e - oldest;
}

void Ebr::drainAll() {
  std::vector<Retired> all;
  {
    MutexLock lk(retMu_);
    all.swap(retired_);
#if OAK_CHECKED
    pendingSet_.clear();
#endif
  }
  if (!all.empty()) {
    OAK_TSAN_ACQUIRE(this);
    pendingRetired_.fetch_sub(all.size(), std::memory_order_relaxed);
    for (const Retired& r : all) r.deleter(r.ptr, r.ctx);
  }
}

}  // namespace oak::sync
