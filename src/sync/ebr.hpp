// Epoch-based reclamation (EBR).
//
// In the Java original, unlinked metadata (retired chunks, skiplist nodes)
// is collected by the JVM once unreachable.  In C++ we must defer physical
// reclamation until no thread can still hold a reference obtained before the
// unlink; classic 3-epoch EBR provides exactly that guarantee and stands in
// for the JVM's safety net (DESIGN.md §4.3).
//
// Usage:
//   Ebr::Guard g(ebr);          // pin the current epoch around an operation
//   ebr.retire(ptr, deleter);   // defer deletion until 2 epochs pass
//
// Threads identify themselves through ThreadRegistry; a thread that is not
// inside a Guard never blocks epoch advancement.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/annotations.hpp"
#include "common/checked.hpp"
#include "common/mutex.hpp"
#include "common/thread_registry.hpp"

#if OAK_CHECKED
#include <unordered_set>
#endif

namespace oak::sync {

class Ebr {
 public:
  Ebr();
  ~Ebr();

  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  class Guard {
   public:
    explicit Guard(Ebr& e) noexcept : ebr_(&e), tid_(ThreadRegistry::id()) {
      ebr_->enter(tid_);
    }
    ~Guard() { ebr_->exit(tid_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Ebr* ebr_;
    std::uint32_t tid_;
  };

  /// Defers `deleter(ptr)` until every thread active at the time of the call
  /// has left its critical section.
  void retire(void* ptr, void (*deleter)(void*, void*), void* ctx);

  /// Convenience: retire with a typed destructor through the unlimited
  /// managed heap is handled by callers; this helper covers plain deletes.
  template <class T>
  void retireDelete(T* ptr) {
    retire(ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  /// Attempts to advance the epoch and drain retired nodes.  Called
  /// internally on a cadence; exposed for tests and shutdown.
  void tryAdvanceAndReclaim();

  /// Reclaims everything regardless of epochs.  Only safe when no other
  /// thread is inside a Guard (e.g., destructor paths, tests).
  void drainAll();

  std::uint64_t retiredCount() const noexcept {
    return pendingRetired_.load(std::memory_order_relaxed);
  }

  /// Observability gauge: how far the oldest pinned thread trails the global
  /// epoch (0 when no thread is inside a Guard).  A persistently large lag
  /// means a straggler is blocking reclamation.
  std::uint64_t epochLag() const noexcept;

  /// True when the calling thread is inside a Guard on this instance.  The
  /// OakSan protocol assertions (retire-under-guard, guarded metadata
  /// dereference) are built on this probe; the slot depth is only ever
  /// written by its own thread, so a relaxed read is exact.
  bool currentThreadGuarded() const noexcept {
    return slots_[ThreadRegistry::id()].depth.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*, void*);
    void* ctx;
    std::uint64_t epoch;
  };

  void enter(std::uint32_t tid) noexcept;
  void exit(std::uint32_t tid) noexcept;

  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};

  std::atomic<std::uint64_t> globalEpoch_{1};
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kInactive};
    std::atomic<std::uint32_t> depth{0};
  };
  Slot slots_[kMaxThreads];

  Mutex retMu_;
  std::vector<Retired> retired_ OAK_GUARDED_BY(retMu_);
  std::atomic<std::uint64_t> pendingRetired_{0};
  std::atomic<std::uint64_t> retireTicks_{0};
#if OAK_CHECKED
  std::unordered_set<void*> pendingSet_ OAK_GUARDED_BY(retMu_);  // double-retire trap
#endif
};

}  // namespace oak::sync
