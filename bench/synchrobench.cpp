// synchrobench — a CLI reproducing the paper's artifact runner (Appendix A).
//
// The original artifact drives all experiments through a synchrobench fork:
// scenarios like `-a 0 -u 100` (put-only) or `--buffer -c -a 100`
// (zero-copy descending scans), competitors OakMap / JavaSkipListMap /
// OffHeapList, and a summary.csv with the columns
//
//   Scenario | Bench | Heap size | Direct Mem | #Threads | Final Size | Throughput
//
// This binary accepts the same vocabulary (plus explicit memory knobs) and
// prints that table; `--csv FILE` also appends machine-readable rows.
//
//   ./synchrobench -b OakMap -t "1 4 8" -u 5 --buffer -d 2000 -i 100000
//   ./synchrobench --scenario 4f   # canned paper scenarios: 4a..4f
//
// With no arguments it runs a quick sweep of all canned scenarios over all
// competitors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

using namespace oak::bench;

namespace {

struct Options {
  std::vector<std::string> benches{"OakMap", "JavaSkipListMap", "OffHeapList"};
  std::vector<unsigned> threads{1, 2, 4, 8};
  std::size_t size = 100'000;
  std::size_t keySize = 100;
  std::size_t valueSize = 1024;
  unsigned updatePct = 0;    // -u : put percentage
  unsigned removePct = 0;    // -r : remove percentage
  unsigned computePct = 0;   // -c with -s: in-place updates
  unsigned scanPct = 0;      // -s : scan percentage
  bool valueJitter = false;  // --churn: puts draw jittered value sizes
  double zipfTheta = 0;      // --zipf: skewed key choice (0 = uniform)
  bool snapshotScans = false;  // snapshot-churn: scans pin an MVCC version
  int maintThreads = -1;     // --maint-threads: background rebalance workers
  unsigned offHeapSlackPct = 6;  // arena headroom over raw data
  bool generationalValues = false;  // recycle value headers (churn preset)
  bool descending = false;   // -a 100 with scans
  bool zeroCopy = false;     // --buffer
  bool stream = false;       // --stream-iteration
  std::uint32_t durationMs = 300;  // -d
  std::size_t scanLength = 1000;
  std::size_t ramMb = 0;     // 0 = auto (3x raw)
  std::vector<std::size_t> shards{1};  // --shards: Oak range-partition sweep
  std::string scenario = "custom";
  std::string csvPath;
};

void usage() {
  std::puts(
      "synchrobench (Oak-C++ artifact runner)\n"
      "  -b  <list>   benches: OakMap JavaSkipListMap OffHeapList (quoted list)\n"
      "  -t  <list>   thread counts, e.g. \"1 4 8\"\n"
      "  -i  <n>      key range (warm-up fills 50%)\n"
      "  -k/-v <n>    key/value size in bytes (default 100/1024)\n"
      "  -u  <pct>    put percentage (rest are gets)\n"
      "  -r  <pct>    remove percentage\n"
      "  -s  <pct>    scan percentage\n"
      "  -c           make -s scans in-place computes instead\n"
      "  -a  <pct>    with -s: percentage of scans that run descending\n"
      "  -d  <ms>     duration per point\n"
      "  -L  <n>      scan length (default 1000)\n"
      "  -m  <MiB>    total RAM budget (default 3x raw data)\n"
      "  --shards <list>      Oak shard counts to sweep, e.g. \"1 4 8\" (default 1)\n"
      "  --buffer             use the zero-copy API\n"
      "  --stream-iteration   use the Stream scan API\n"
      "  --churn              delete/resize churn preset (50%% put w/ jittered\n"
      "                       values, 30%% remove, 20%% get) — the magazine\n"
      "                       allocator's target workload\n"
      "  --no-magazines       pre-PR first-fit slow path (A/B baseline)\n"
      "  --zipf <theta>       zipfian key skew (YCSB formula; 0.99 typical)\n"
      "  --maint-threads <n>  background maintenance workers for Oak\n"
      "                       (0 = inline rebalance on mutators, -1 = env/auto)\n"
      "  --scenario <4a..4f|churn|zipf|snapshot-churn>  canned scenario\n"
      "  --no-snapshot-scans  snapshot-churn baseline: same mix, scans\n"
      "                       don't pin a version (A/B for the p99 gate)\n"
      "  --csv <file>         append rows as CSV\n");
}

void applyScenario(Options& o) {
  // The artifact's scenario strings (Appendix A.7).
  if (o.scenario == "4a") {            // "-a 0 -u 100"
    o.updatePct = 100;
  } else if (o.scenario == "4b") {     // "--buffer -u 0 -s 100 -c"
    o.zeroCopy = true;
    o.scanPct = 100;
    o.computePct = 100;
  } else if (o.scenario == "4c") {     // "--buffer" (gets) — zc vs copy is -b
    o.zeroCopy = true;
  } else if (o.scenario == "4c-copy") {
    o.zeroCopy = false;
  } else if (o.scenario == "4d") {     // "--buffer -a 0 -u 5"
    o.zeroCopy = true;
    o.updatePct = 5;
  } else if (o.scenario == "4e") {     // "--buffer -c" (ascending entry scan)
    o.zeroCopy = true;
    o.scanPct = 100;
  } else if (o.scenario == "4e-stream") {
    o.zeroCopy = true;
    o.scanPct = 100;
    o.stream = true;
  } else if (o.scenario == "4f") {     // "--buffer -c -a 100" (descending)
    o.zeroCopy = true;
    o.scanPct = 100;
    o.descending = true;
  } else if (o.scenario == "4f-stream") {
    o.zeroCopy = true;
    o.scanPct = 100;
    o.descending = true;
    o.stream = true;
  } else if (o.scenario == "churn") {
    // Delete/resize churn: every put overwrites with a jittered value size
    // (resize -> free + alloc) and removes keep the free path hot.  This is
    // the workload whose recycled-slice traffic the size-class magazines
    // absorb; compare with --no-magazines for the first-fit baseline.
    o.zeroCopy = true;
    o.updatePct = 50;
    o.removePct = 30;
    o.valueJitter = true;
    // Deletes and resizes fragment the first-fit arenas; give the off-heap
    // pool real headroom so the gate measures recycling, not OOM churn.
    o.offHeapSlackPct = 50;
    // Removes dominate this mix; immortal headers (the paper's evaluated
    // default) would leak one slice per remove and drown the measurement.
    o.generationalValues = true;
  } else if (o.scenario == "zipf") {
    // Skewed put-heavy mix for the maintenance A/B: zipfian key choice
    // concentrates writes on the low end of the range, so rebalance (and,
    // when sharded, split/merge) pressure lands on a few hot chunks.  The
    // remove leg matters — pure overwrites reuse the sorted prefix and
    // stop triggering rebalances once the range is populated; remove +
    // reinsert keeps every hot chunk accumulating unsorted entries, which
    // is exactly the work the background pool exists to absorb.  Compare
    // --maint-threads 0 (inline, the seed's behavior) against N > 0 and
    // watch the put p99 in the METRICS line.
    o.zeroCopy = true;
    o.updatePct = 40;
    o.removePct = 20;
    o.zipfTheta = 0.99;
    o.offHeapSlackPct = 50;
    o.generationalValues = true;
  } else if (o.scenario == "snapshot-churn") {
    // Long snapshot scans racing zipfian writers (ISSUE 8).  Each scan pins
    // an MVCC read version for its whole walk, so every overwrite of a
    // scanned key chains the superseded value until version GC catches up —
    // the worst case for both the write path (chain pushes) and the arena
    // (retained versions).  The METRICS line carries the writer's put p99
    // and the whole-scan p50/p99; bench_smoke gates the put p99 against a
    // --no-snapshot-scans baseline of the same mix.
    o.zeroCopy = true;
    o.updatePct = 40;
    o.removePct = 10;
    o.scanPct = 10;
    o.zipfTheta = 0.99;
    o.snapshotScans = true;
    // Retained version chains live in the same arena as the data; give
    // them real headroom on top of the churn slack.
    o.offHeapSlackPct = 75;
    o.generationalValues = true;
  }
}

Mix mixFor(const Options& o) {
  Mix m;
  m.putPct = o.updatePct;
  m.removePct = o.removePct;
  if (o.scanPct > 0 && o.computePct > 0) {
    m.computePct = o.computePct;  // "-s 100 -c": in-place updates
  } else if (o.scanPct > 0) {
    (o.descending ? m.scanDescPct : m.scanAscPct) = o.scanPct;
  }
  m.streamScans = o.stream;
  m.valueJitter = o.valueJitter;
  m.zipfTheta = o.zipfTheta;
  m.snapshotScans = o.snapshotScans;
  return m;
}

template <class Adapter, class... Args>
void runBench(const Options& o, const std::string& bench,
              const std::vector<std::size_t>& shards, Args&&... args) {
  std::ofstream csv;
  if (!o.csvPath.empty()) csv.open(o.csvPath, std::ios::app);
  for (std::size_t sh : shards) {
    for (unsigned t : o.threads) {
      BenchConfig cfg;
      cfg.keyRange = o.size;
      cfg.keyBytes = o.keySize;
      cfg.valueBytes = o.valueSize;
      cfg.threads = t;
      cfg.durationMs = o.durationMs;
      cfg.scanLength = o.scanLength;
      cfg.shards = sh;
      cfg.offHeapSlackPct = o.offHeapSlackPct;
      cfg.generationalValues = o.generationalValues;
      cfg.maintThreads = o.maintThreads;
      cfg.totalRamBytes = o.ramMb != 0 ? (o.ramMb << 20) : cfg.rawDataBytes() * 3;
      const RamSplit split = splitRam(cfg, bench != "JavaSkipListMap");
      std::string label = bench;
      if (sh > 1) label += "-x" + std::to_string(sh);
      const PointResult r =
          runPoint<Adapter>(cfg, mixFor(o), std::forward<Args>(args)...);
      // The artifact's summary.csv layout.
      std::printf("%-14s %-18s %8zum %8zum %9u %12zu %14.6f\n", o.scenario.c_str(),
                  label.c_str(), split.heapBytes >> 20, split.offHeapBytes >> 20, t,
                  r.finalSize, r.kops / 1e3 /* Mops, like the artifact */);
      printMetricsLine(label.c_str(), static_cast<double>(t), r);
      std::fflush(stdout);
      if (csv.is_open()) {
        csv << o.scenario << ',' << label << ',' << (split.heapBytes >> 20)
            << "m," << (split.offHeapBytes >> 20) << "m," << t << ','
            << r.finalSize << ',' << r.kops / 1e3 << '\n';
      }
    }
  }
}

void runAll(const Options& o) {
  std::printf("%-14s %-18s %9s %9s %9s %12s %14s\n", "Scenario", "Bench",
              "Heap", "DirectMem", "#Threads", "Final Size", "Mops/sec");
  const std::vector<std::size_t> one{1};
  for (const std::string& b : o.benches) {
    if (b == "OakMap") {
      // Only Oak understands sharding; the baselines run once.
      runBench<OakAdapter>(o, b, o.shards, /*copyApi=*/!o.zeroCopy);
    } else if (b == "JavaSkipListMap") {
      runBench<OnHeapAdapter>(o, b, one);
    } else if (b == "OffHeapList") {
      runBench<OffHeapAdapter>(o, b, one);
    } else {
      std::fprintf(stderr, "unknown bench: %s\n", b.c_str());
    }
  }
}

std::vector<std::string> splitList(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ' ' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  o.size = envSize("OAK_BENCH_SIZE", o.size);
  o.durationMs = static_cast<std::uint32_t>(
      envSize("OAK_BENCH_DURATION_MS", o.durationMs));

  bool anyArg = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    anyArg = true;
    if (a == "-b") {
      o.benches = splitList(next());
    } else if (a == "-t") {
      o.threads.clear();
      for (auto& s : splitList(next())) {
        o.threads.push_back(static_cast<unsigned>(std::stoul(s)));
      }
    } else if (a == "-i") {
      o.size = std::stoull(next());
    } else if (a == "-k") {
      o.keySize = std::stoull(next());
    } else if (a == "-v") {
      o.valueSize = std::stoull(next());
    } else if (a == "-u") {
      o.updatePct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-r") {
      o.removePct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-s") {
      o.scanPct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-c") {
      o.computePct = 100;
    } else if (a == "-a") {
      o.descending = std::stoul(next()) >= 50;
    } else if (a == "-d") {
      o.durationMs = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "-L") {
      o.scanLength = std::stoull(next());
    } else if (a == "-m") {
      o.ramMb = std::stoull(next());
    } else if (a == "--shards") {
      o.shards.clear();
      for (auto& s : splitList(next())) o.shards.push_back(std::stoull(s));
      if (o.shards.empty()) o.shards.push_back(1);
    } else if (a == "--buffer") {
      o.zeroCopy = true;
    } else if (a == "--stream-iteration") {
      o.stream = true;
    } else if (a == "--churn") {
      o.scenario = "churn";
      applyScenario(o);
    } else if (a == "--no-magazines") {
      oak::mem::FirstFitAllocator::setMagazinesDefaultEnabled(false);
    } else if (a == "--no-snapshot-scans") {
      o.snapshotScans = false;  // after --scenario snapshot-churn
    } else if (a == "--zipf") {
      o.zipfTheta = std::stod(next());
    } else if (a == "--maint-threads") {
      o.maintThreads = std::stoi(next());
    } else if (a == "--scenario") {
      o.scenario = next();
      applyScenario(o);
    } else if (a == "--csv") {
      o.csvPath = next();
    } else if (a == "-h" || a == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (!anyArg) {
    // Quick sweep of all canned scenarios (CI-friendly defaults).
    Options quick = o;
    quick.size = envSize("OAK_BENCH_SIZE", 20'000);
    quick.durationMs = static_cast<std::uint32_t>(
        envSize("OAK_BENCH_DURATION_MS", 120));
    quick.threads = envThreadList("OAK_BENCH_THREADS", {1, 4});
    for (const char* sc : {"4a", "4c", "4c-copy", "4d", "4e", "4e-stream",
                           "4f", "4f-stream"}) {
      Options run = quick;
      run.scenario = sc;
      applyScenario(run);
      runAll(run);
    }
    return 0;
  }
  runAll(o);
  return 0;
}
