// synchrobench — a CLI reproducing the paper's artifact runner (Appendix A).
//
// The original artifact drives all experiments through a synchrobench fork:
// scenarios like `-a 0 -u 100` (put-only) or `--buffer -c -a 100`
// (zero-copy descending scans), competitors OakMap / JavaSkipListMap /
// OffHeapList, and a summary.csv with the columns
//
//   Scenario | Bench | Heap size | Direct Mem | #Threads | Final Size | Throughput
//
// This binary accepts the same vocabulary (plus explicit memory knobs) and
// prints that table; `--csv FILE` also appends machine-readable rows.
//
//   ./synchrobench -b OakMap -t "1 4 8" -u 5 --buffer -d 2000 -i 100000
//   ./synchrobench --scenario 4f   # canned paper scenarios: 4a..4f
//
// With no arguments it runs a quick sweep of all canned scenarios over all
// competitors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

using namespace oak::bench;

namespace {

struct Options {
  std::vector<std::string> benches{"OakMap", "JavaSkipListMap", "OffHeapList"};
  std::vector<unsigned> threads{1, 2, 4, 8};
  std::size_t size = 100'000;
  std::size_t keySize = 100;
  std::size_t valueSize = 1024;
  unsigned updatePct = 0;    // -u : put percentage
  unsigned removePct = 0;    // -r : remove percentage
  unsigned computePct = 0;   // -c with -s: in-place updates
  unsigned scanPct = 0;      // -s : scan percentage
  bool valueJitter = false;  // --churn: puts draw jittered value sizes
  double zipfTheta = 0;      // --zipf: skewed key choice (0 = uniform)
  bool snapshotScans = false;  // snapshot-churn: scans pin an MVCC version
  int maintThreads = -1;     // --maint-threads: background rebalance workers
  unsigned offHeapSlackPct = 6;  // arena headroom over raw data
  bool generationalValues = false;  // recycle value headers (churn preset)
  bool descending = false;   // -a 100 with scans
  bool zeroCopy = false;     // --buffer
  bool stream = false;       // --stream-iteration
  std::uint32_t durationMs = 300;  // -d
  std::size_t scanLength = 1000;
  std::size_t ramMb = 0;     // 0 = auto (3x raw)
  std::vector<std::size_t> shards{1};  // --shards: Oak range-partition sweep
  std::string scenario = "custom";
  std::string csvPath;
  std::string storageDir;    // --storage-dir: Oak runs durable (WAL + mmap)
  std::string fsyncPolicy = "never";  // --fsync: never | interval | every-commit
};

void usage() {
  std::puts(
      "synchrobench (Oak-C++ artifact runner)\n"
      "  -b  <list>   benches: OakMap JavaSkipListMap OffHeapList (quoted list)\n"
      "  -t  <list>   thread counts, e.g. \"1 4 8\"\n"
      "  -i  <n>      key range (warm-up fills 50%)\n"
      "  -k/-v <n>    key/value size in bytes (default 100/1024)\n"
      "  -u  <pct>    put percentage (rest are gets)\n"
      "  -r  <pct>    remove percentage\n"
      "  -s  <pct>    scan percentage\n"
      "  -c           make -s scans in-place computes instead\n"
      "  -a  <pct>    with -s: percentage of scans that run descending\n"
      "  -d  <ms>     duration per point\n"
      "  -L  <n>      scan length (default 1000)\n"
      "  -m  <MiB>    total RAM budget (default 3x raw data)\n"
      "  --shards <list>      Oak shard counts to sweep, e.g. \"1 4 8\" (default 1)\n"
      "  --buffer             use the zero-copy API\n"
      "  --stream-iteration   use the Stream scan API\n"
      "  --churn              delete/resize churn preset (50%% put w/ jittered\n"
      "                       values, 30%% remove, 20%% get) — the magazine\n"
      "                       allocator's target workload\n"
      "  --no-magazines       pre-PR first-fit slow path (A/B baseline)\n"
      "  --zipf <theta>       zipfian key skew (YCSB formula; 0.99 typical)\n"
      "  --maint-threads <n>  background maintenance workers for Oak\n"
      "                       (0 = inline rebalance on mutators, -1 = env/auto)\n"
      "  --scenario <4a..4f|churn|zipf|snapshot-churn|recovery|compaction>\n"
      "                       canned scenario\n"
      "  --no-snapshot-scans  snapshot-churn baseline: same mix, scans\n"
      "                       don't pin a version (A/B for the p99 gate)\n"
      "  --storage-dir <dir>  Oak runs durable: mmap arenas + WAL + checkpoints\n"
      "                       under <dir> (wiped per point; sweeps reuse it)\n"
      "  --fsync <policy>     WAL sync for durable runs: never (default),\n"
      "                       interval, every-commit\n"
      "  --csv <file>         append rows as CSV\n"
      "\n"
      "  --scenario recovery runs the durability A/B instead of a mix sweep:\n"
      "  in-memory vs WAL-on put latency, then checkpoint + tail + in-process\n"
      "  reopen, emitting one machine-readable RECOVERY line (bench_smoke's\n"
      "  cold-restart and put-p99 gates read it).\n"
      "\n"
      "  --scenario compaction runs the relocation A/B: wave-shaped churn\n"
      "  carves sparse arenas, then the same timed put stage runs with and\n"
      "  without a continuous relocator, emitting one COMPACTION line\n"
      "  (bench_smoke gates the put p99 ratio and the arena reclaim).\n");
}

void applyScenario(Options& o) {
  // The artifact's scenario strings (Appendix A.7).
  if (o.scenario == "4a") {            // "-a 0 -u 100"
    o.updatePct = 100;
  } else if (o.scenario == "4b") {     // "--buffer -u 0 -s 100 -c"
    o.zeroCopy = true;
    o.scanPct = 100;
    o.computePct = 100;
  } else if (o.scenario == "4c") {     // "--buffer" (gets) — zc vs copy is -b
    o.zeroCopy = true;
  } else if (o.scenario == "4c-copy") {
    o.zeroCopy = false;
  } else if (o.scenario == "4d") {     // "--buffer -a 0 -u 5"
    o.zeroCopy = true;
    o.updatePct = 5;
  } else if (o.scenario == "4e") {     // "--buffer -c" (ascending entry scan)
    o.zeroCopy = true;
    o.scanPct = 100;
  } else if (o.scenario == "4e-stream") {
    o.zeroCopy = true;
    o.scanPct = 100;
    o.stream = true;
  } else if (o.scenario == "4f") {     // "--buffer -c -a 100" (descending)
    o.zeroCopy = true;
    o.scanPct = 100;
    o.descending = true;
  } else if (o.scenario == "4f-stream") {
    o.zeroCopy = true;
    o.scanPct = 100;
    o.descending = true;
    o.stream = true;
  } else if (o.scenario == "churn") {
    // Delete/resize churn: every put overwrites with a jittered value size
    // (resize -> free + alloc) and removes keep the free path hot.  This is
    // the workload whose recycled-slice traffic the size-class magazines
    // absorb; compare with --no-magazines for the first-fit baseline.
    o.zeroCopy = true;
    o.updatePct = 50;
    o.removePct = 30;
    o.valueJitter = true;
    // Deletes and resizes fragment the first-fit arenas; give the off-heap
    // pool real headroom so the gate measures recycling, not OOM churn.
    o.offHeapSlackPct = 50;
    // Removes dominate this mix; immortal headers (the paper's evaluated
    // default) would leak one slice per remove and drown the measurement.
    o.generationalValues = true;
  } else if (o.scenario == "zipf") {
    // Skewed put-heavy mix for the maintenance A/B: zipfian key choice
    // concentrates writes on the low end of the range, so rebalance (and,
    // when sharded, split/merge) pressure lands on a few hot chunks.  The
    // remove leg matters — pure overwrites reuse the sorted prefix and
    // stop triggering rebalances once the range is populated; remove +
    // reinsert keeps every hot chunk accumulating unsorted entries, which
    // is exactly the work the background pool exists to absorb.  Compare
    // --maint-threads 0 (inline, the seed's behavior) against N > 0 and
    // watch the put p99 in the METRICS line.
    o.zeroCopy = true;
    o.updatePct = 40;
    o.removePct = 20;
    o.zipfTheta = 0.99;
    o.offHeapSlackPct = 50;
    o.generationalValues = true;
  } else if (o.scenario == "snapshot-churn") {
    // Long snapshot scans racing zipfian writers (ISSUE 8).  Each scan pins
    // an MVCC read version for its whole walk, so every overwrite of a
    // scanned key chains the superseded value until version GC catches up —
    // the worst case for both the write path (chain pushes) and the arena
    // (retained versions).  The METRICS line carries the writer's put p99
    // and the whole-scan p50/p99; bench_smoke gates the put p99 against a
    // --no-snapshot-scans baseline of the same mix.
    o.zeroCopy = true;
    o.updatePct = 40;
    o.removePct = 10;
    o.scanPct = 10;
    o.zipfTheta = 0.99;
    o.snapshotScans = true;
    // Retained version chains live in the same arena as the data; give
    // them real headroom on top of the churn slack.
    o.offHeapSlackPct = 75;
    o.generationalValues = true;
  }
}

Mix mixFor(const Options& o) {
  Mix m;
  m.putPct = o.updatePct;
  m.removePct = o.removePct;
  if (o.scanPct > 0 && o.computePct > 0) {
    m.computePct = o.computePct;  // "-s 100 -c": in-place updates
  } else if (o.scanPct > 0) {
    (o.descending ? m.scanDescPct : m.scanAscPct) = o.scanPct;
  }
  m.streamScans = o.stream;
  m.valueJitter = o.valueJitter;
  m.zipfTheta = o.zipfTheta;
  m.snapshotScans = o.snapshotScans;
  return m;
}

template <class Adapter, class... Args>
void runBench(const Options& o, const std::string& bench,
              const std::vector<std::size_t>& shards, Args&&... args) {
  std::ofstream csv;
  if (!o.csvPath.empty()) csv.open(o.csvPath, std::ios::app);
  for (std::size_t sh : shards) {
    for (unsigned t : o.threads) {
      BenchConfig cfg;
      cfg.keyRange = o.size;
      cfg.keyBytes = o.keySize;
      cfg.valueBytes = o.valueSize;
      cfg.threads = t;
      cfg.durationMs = o.durationMs;
      cfg.scanLength = o.scanLength;
      cfg.shards = sh;
      cfg.offHeapSlackPct = o.offHeapSlackPct;
      cfg.generationalValues = o.generationalValues;
      cfg.maintThreads = o.maintThreads;
      cfg.totalRamBytes = o.ramMb != 0 ? (o.ramMb << 20) : cfg.rawDataBytes() * 3;
      if (!o.storageDir.empty() && bench == "OakMap") {
        // Each point gets a fresh subtree so a sweep never recovers the
        // previous point's data (repeats inside one point still share it —
        // use repeats 1 for clean durable numbers).
        cfg.storageDir = o.storageDir + "/" + bench + "-x" + std::to_string(sh) +
                         "-t" + std::to_string(t);
        std::error_code ec;
        std::filesystem::remove_all(cfg.storageDir, ec);
        cfg.fsyncPolicy = o.fsyncPolicy;
      }
      const RamSplit split = splitRam(cfg, bench != "JavaSkipListMap");
      std::string label = bench;
      if (sh > 1) label += "-x" + std::to_string(sh);
      const PointResult r =
          runPoint<Adapter>(cfg, mixFor(o), std::forward<Args>(args)...);
      // The artifact's summary.csv layout.
      std::printf("%-14s %-18s %8zum %8zum %9u %12zu %14.6f\n", o.scenario.c_str(),
                  label.c_str(), split.heapBytes >> 20, split.offHeapBytes >> 20, t,
                  r.finalSize, r.kops / 1e3 /* Mops, like the artifact */);
      printMetricsLine(label.c_str(), static_cast<double>(t), r);
      std::fflush(stdout);
      if (csv.is_open()) {
        csv << o.scenario << ',' << label << ',' << (split.heapBytes >> 20)
            << "m," << (split.offHeapBytes >> 20) << "m," << t << ','
            << r.finalSize << ',' << r.kops / 1e3 << '\n';
      }
    }
  }
}

void runAll(const Options& o) {
  std::printf("%-14s %-18s %9s %9s %9s %12s %14s\n", "Scenario", "Bench",
              "Heap", "DirectMem", "#Threads", "Final Size", "Mops/sec");
  const std::vector<std::size_t> one{1};
  for (const std::string& b : o.benches) {
    if (b == "OakMap") {
      // Only Oak understands sharding; the baselines run once.
      runBench<OakAdapter>(o, b, o.shards, /*copyApi=*/!o.zeroCopy);
    } else if (b == "JavaSkipListMap") {
      runBench<OnHeapAdapter>(o, b, one);
    } else if (b == "OffHeapList") {
      runBench<OffHeapAdapter>(o, b, one);
    } else {
      std::fprintf(stderr, "unknown bench: %s\n", b.c_str());
    }
  }
}

// ------------------------------------------------- recovery scenario
// Durability A/B + cold-restart measurement (ISSUE 9).  Not a mix sweep:
// one in-memory leg for the baseline put latency, then a durable leg that
// ingests the full range, checkpoints, writes a WAL tail (the same timed
// put stage that yields the with-WAL latency), closes the map, and times
// an in-process reopen.  Emits one RECOVERY line; bench_smoke gates
// put-p99-with-WAL against the baseline and the reopen against re-ingest.

struct PutLat {
  double p50Ns = 0;
  double p99Ns = 0;
  std::uint64_t ops = 0;
};

/// cfg.threads workers, `total` overwrite puts of random in-range keys,
/// every op latency sampled (these are exact percentiles, unlike the
/// bucketed histogram in the METRICS line — the A/B gate wants the two
/// legs measured identically and precisely).
PutLat timedPutStage(OakAdapter& a, const BenchConfig& cfg, std::size_t total) {
  const unsigned nThreads = cfg.threads == 0 ? 1 : cfg.threads;
  const std::size_t perThread = (total + nThreads - 1) / nThreads;
  std::vector<std::vector<double>> ns(nThreads);
  std::atomic<bool> start{false};
  auto worker = [&](unsigned t) {
    oak::XorShift rng(cfg.seed * 31337 + t * 7919 + 13);
    std::vector<std::byte> key(cfg.keyBytes);
    std::vector<std::byte> value(cfg.valueBytes < 8 ? 8 : cfg.valueBytes,
                                 std::byte{0x33});
    ns[t].reserve(perThread);
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::size_t i = 0; i < perThread; ++i) {
      const std::uint64_t id = rng.nextBounded(cfg.keyRange);
      makeKey({key.data(), key.size()}, id);
      oak::storeUnaligned<std::uint64_t>(value.data(), id);
      const auto t0 = std::chrono::steady_clock::now();
      a.put({key.data(), key.size()}, {value.data(), value.size()});
      ns[t].push_back(std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(nThreads);
  for (unsigned t = 0; t < nThreads; ++t) threads.emplace_back(worker, t);
  start.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  std::vector<double> all;
  for (auto& v : ns) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  PutLat r;
  r.ops = all.size();
  if (!all.empty()) {
    r.p50Ns = all[all.size() / 2];
    r.p99Ns = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return r;
}

int runRecovery(const Options& o) {
  namespace fs = std::filesystem;
  using Clock = std::chrono::steady_clock;
  auto msSince = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };

  BenchConfig cfg;
  cfg.keyRange = o.size;
  cfg.keyBytes = o.keySize;
  cfg.valueBytes = o.valueSize;
  cfg.threads = o.threads.empty() ? 1 : o.threads.front();
  cfg.shards = o.shards.empty() ? 1 : o.shards.front();
  // Checkpoints retain a pinned snapshot while overwrites keep landing, so
  // the arena briefly holds both versions of the hottest values.
  cfg.offHeapSlackPct = o.offHeapSlackPct < 50 ? 50 : o.offHeapSlackPct;
  cfg.generationalValues = true;
  cfg.maintThreads = o.maintThreads;
  // Auto budget: 3x raw, floored so the heap share (splitRam keeps >= 1/8
  // for metadata) still fits the GC's committed headroom at small -i.
  cfg.totalRamBytes = o.ramMb != 0
                          ? (o.ramMb << 20)
                          : std::max(cfg.rawDataBytes() * 3,
                                     std::size_t{256} << 20);

  const std::size_t pairs = cfg.keyRange;
  // The WAL tail doubles as the timed put stage; keep it a strict subset of
  // the range so recovery provably replays less than it bulk-loads.
  std::size_t tail = envSize("OAK_BENCH_RECOVERY_TAIL", pairs / 20);
  if (tail < 1000) tail = 1000;
  if (tail >= pairs) tail = pairs / 2 + 1;

  std::string dir = o.storageDir;
  if (dir.empty()) {
    dir = (fs::temp_directory_path() / "oak-synchrobench-recovery").string();
  }
  std::error_code ec;
  fs::remove_all(dir, ec);

  std::printf("recovery bench: %zu pairs (%zuB keys, %zuB values), "
              "%u threads, %zu shard(s), fsync=%s, dir=%s\n",
              pairs, cfg.keyBytes, cfg.valueBytes, cfg.threads, cfg.shards,
              o.fsyncPolicy.c_str(), dir.c_str());

  // ---- leg 1: in-memory baseline put latency
  PutLat base;
  double memIngestKops = 0;
  {
    OakAdapter a(cfg);
    OomKind kind = OomKind::None;
    if (!ingestStage(a, cfg, pairs, &memIngestKops, &kind)) {
      std::fprintf(stderr, "recovery bench: baseline ingest OOM (%s)\n",
                   oomKindName(kind));
      return 1;
    }
    base = timedPutStage(a, cfg, tail);
  }
  std::printf("recovery bench: baseline ingest %.1f Kops, put p50 %.0fns p99 %.0fns\n",
              memIngestKops, base.p50Ns, base.p99Ns);

  // ---- leg 2: durable — ingest, checkpoint, WAL tail, close
  BenchConfig dcfg = cfg;
  dcfg.storageDir = dir;
  dcfg.fsyncPolicy = o.fsyncPolicy;
  double ingestKops = 0, ingestMs = 0, checkpointMs = 0, closeMs = 0;
  std::uint64_t cpPairs = 0, walAppends = 0, walBytes = 0, checkpoints = 0;
  PutLat wal;
  std::size_t verrors = 0;
  {
    auto a = std::make_unique<OakAdapter>(dcfg);
    auto t0 = Clock::now();
    OomKind kind = OomKind::None;
    if (!ingestStage(*a, dcfg, pairs, &ingestKops, &kind)) {
      std::fprintf(stderr, "recovery bench: durable ingest OOM (%s)\n",
                   oomKindName(kind));
      return 1;
    }
    ingestMs = msSince(t0);
    t0 = Clock::now();
    cpPairs = a->checkpointNow();
    checkpointMs = msSince(t0);
    wal = timedPutStage(*a, dcfg, tail);
    a->syncWal();
    const oak::obs::Metrics m = a->metrics();
    walAppends = m.walAppends;
    walBytes = m.walBytes;
    checkpoints = m.checkpoints;
    if (validationEnabled()) verrors += a->validateStructure();
    t0 = Clock::now();
    a.reset();  // destructor unmaps the arenas and closes the WAL fd
    closeMs = msSince(t0);
  }
  std::printf("recovery bench: durable ingest %.1f Kops (%.0fms), checkpoint "
              "%llu pairs in %.0fms, tail %llu puts p50 %.0fns p99 %.0fns\n",
              ingestKops, ingestMs,
              static_cast<unsigned long long>(cpPairs), checkpointMs,
              static_cast<unsigned long long>(wal.ops), wal.p50Ns, wal.p99Ns);

  // ---- leg 3: cold restart — reopen the same directory in-process
  double reopenMs = 0;
  std::uint64_t replayed = 0, recoveryMs = 0;
  std::size_t finalSize = 0;
  {
    const auto t0 = Clock::now();
    OakAdapter a(dcfg);
    reopenMs = msSince(t0);
    replayed = a.recoveryReplayedRecords();
    recoveryMs = a.recoveryMillis();
    finalSize = a.finalSize();
    if (validationEnabled()) verrors += a.validateStructure();
  }
  const double ratio = base.p99Ns > 0 ? wal.p99Ns / base.p99Ns : 0;
  std::printf("recovery bench: reopen %.0fms (recovery %llums, %llu WAL "
              "records replayed), final size %zu, p99 ratio %.3f\n",
              reopenMs, static_cast<unsigned long long>(recoveryMs),
              static_cast<unsigned long long>(replayed), finalSize, ratio);

  std::printf(
      "RECOVERY {\"pairs\":%zu,\"tail_puts\":%llu,\"threads\":%u,"
      "\"shards\":%zu,\"value_bytes\":%zu,\"fsync\":\"%s\","
      "\"base_ingest_kops\":%.1f,\"base_put_p50_ns\":%.0f,"
      "\"base_put_p99_ns\":%.0f,"
      "\"wal_ingest_kops\":%.1f,\"wal_ingest_ms\":%.0f,"
      "\"wal_put_p50_ns\":%.0f,\"wal_put_p99_ns\":%.0f,"
      "\"put_p99_ratio\":%.4f,"
      "\"checkpoint_pairs\":%llu,\"checkpoint_ms\":%.0f,"
      "\"checkpoints\":%llu,\"wal_appends\":%llu,\"wal_bytes\":%llu,"
      "\"close_ms\":%.0f,\"reopen_ms\":%.0f,\"recovery_ms\":%llu,"
      "\"replayed_records\":%llu,\"final_size\":%zu,"
      "\"validation_errors\":%zu}\n",
      pairs, static_cast<unsigned long long>(wal.ops), cfg.threads, cfg.shards,
      cfg.valueBytes, o.fsyncPolicy.c_str(), memIngestKops, base.p50Ns,
      base.p99Ns, ingestKops, ingestMs, wal.p50Ns, wal.p99Ns, ratio,
      static_cast<unsigned long long>(cpPairs), checkpointMs,
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(walAppends),
      static_cast<unsigned long long>(walBytes), closeMs, reopenMs,
      static_cast<unsigned long long>(recoveryMs),
      static_cast<unsigned long long>(replayed), finalSize, verrors);
  std::fflush(stdout);
  return verrors == 0 ? 0 : 1;
}

// ------------------------------------------------- compaction scenario
// Relocation A/B (DESIGN.md §13).  Not a mix sweep: both legs run the same
// wave-shaped churn — bulk put the whole range with jittered sizes, bulk
// remove 4/5.  That is the shape that actually carves arenas below the
// occupancy threshold; steady interleaved churn never does, because
// first-fit refills the holes as fast as removes open them.  The final
// wave's puts are latency-sampled (exact percentiles, like the recovery
// A/B).  Leg A runs with relocation off — the put baseline and the
// no-evacuation arena high-water mark.  Leg B runs the identical workload
// with background compaction enabled, so the sampled puts race the
// evacuation passes the earlier waves' garbage triggers; afterwards it
// settles with explicit compactNow() rounds and reports the reclaimed
// arena count.  Emits one COMPACTION line; bench_smoke gates the put p99
// ratio and that evacuation really moved slices and retired arenas.

struct CompactionLeg {
  PutLat put;                           ///< sampled steady-state churn
  std::uint64_t arenaBlocksAfter = 0;   ///< after settling
  std::uint64_t footprintAfter = 0;
  std::size_t retired = 0;              ///< arenas retired by compactNow
  std::uint64_t evacRuns = 0;
  std::uint64_t arenasEvacuated = 0;
  std::uint64_t slicesRelocated = 0;
  std::uint64_t bytesRelocated = 0;
  std::size_t verrors = 0;
};

// One leg's full lifecycle: ingest, churn waves, sampled stage reps,
// settle.  Both legs are constructed up-front and their sampled reps
// interleave A/B/A/B so host-load drift lands on both alike — the
// sequential design (all of A, then all of B, seconds apart) showed 2x
// ratio swings that were nothing but the box changing gear between legs.
class CompactionRun {
 public:
  CompactionRun(const BenchConfig& cfg, int waves)
      : cfg_(cfg),
        waves_(waves),
        a_(cfg),
        key_(cfg.keyBytes),
        jitterStep_(cfg.valueBytes / 8 < 8 ? 8 : cfg.valueBytes / 8),
        value_(cfg.valueBytes / 2 + 8 * jitterStep_, std::byte{0x44}),
        rng_(cfg.seed * 104729 + 17) {}

  CompactionLeg leg;

  // Ingest + churn waves: every id gets a fresh jittered-size value
  // (resize = free + alloc), then 4/5 of the range is bulk-removed.  The
  // version-GC drain matters: removed values stay live in their chains
  // until collected, and slices the collector hasn't freed don't count
  // against occupancy.
  bool prepare() {
    double ingestKops = 0;
    OomKind kind = OomKind::None;
    if (!ingestStage(a_, cfg_, cfg_.keyRange / 2, &ingestKops, &kind)) {
      std::fprintf(stderr, "compaction bench: ingest OOM (%s)\n",
                   oomKindName(kind));
      leg.verrors = 1;
      return false;
    }
    for (int w = 0; w < waves_; ++w) {
      for (std::uint64_t id = 0; id < cfg_.keyRange; ++id) {
        makeKey({key_.data(), key_.size()}, id);
        std::size_t vlen =
            cfg_.valueBytes / 2 + jitterStep_ * rng_.nextBounded(9);
        if (vlen < 8) vlen = 8;
        oak::storeUnaligned<std::uint64_t>(value_.data(), id);
        a_.put({key_.data(), key_.size()}, {value_.data(), vlen});
      }
      for (std::uint64_t id = 0; id < cfg_.keyRange; ++id) {
        if ((id + static_cast<std::uint64_t>(w)) % 5 == 0) continue;
        makeKey({key_.data(), key_.size()}, id);
        a_.remove({key_.data(), key_.size()});
      }
      drain(true);
    }
    return true;
  }

  // Sampled stage: steady-state churn (put/remove/get, jittered sizes) on
  // cfg.threads mutators with the relocator still armed.  Steady churn
  // keeps arenas dense — first-fit refills holes as fast as removes open
  // them — so the armed trigger mostly declines after its occupancy probe
  // and only occasionally finds a real victim; the sampled puts measure
  // that product steady state, against leg A's identical mix on a
  // fragmented, never-compacted map.  The first quarter of each worker's
  // ops is warm-up: evacuation flushed the size-class magazines, and the
  // refill transient is not the cost the gate is after.
  PutLat stageRep(int rep) {
    PutLat put;
    const unsigned nThreads = cfg_.threads == 0 ? 1 : cfg_.threads;
    const std::uint64_t opsPerThread = 4 * cfg_.keyRange / nThreads;
    std::vector<std::vector<double>> ns(nThreads);
    std::atomic<bool> start{false};
    auto mutator = [&](unsigned t) {
      oak::XorShift trng(cfg_.seed * 7919 + t * 104729 +
                         static_cast<std::uint64_t>(rep) * 15485863 + 31);
      std::vector<std::byte> tkey(cfg_.keyBytes);
      std::vector<std::byte> tvalue(value_.size(), std::byte{0x44});
      ns[t].reserve(opsPerThread / 2);
      const std::uint64_t warm = opsPerThread / 4;
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < opsPerThread; ++i) {
        const std::uint64_t id = trng.nextBounded(cfg_.keyRange);
        makeKey({tkey.data(), tkey.size()}, id);
        const oak::ByteSpan k{tkey.data(), tkey.size()};
        const auto pct = trng.nextBounded(100);
        if (pct < 50) {
          std::size_t vlen =
              cfg_.valueBytes / 2 + jitterStep_ * trng.nextBounded(9);
          if (vlen < 8) vlen = 8;
          oak::storeUnaligned<std::uint64_t>(tvalue.data(), id);
          if (i >= warm) {
            const auto t0 = std::chrono::steady_clock::now();
            a_.put(k, {tvalue.data(), vlen});
            ns[t].push_back(std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
          } else {
            a_.put(k, {tvalue.data(), vlen});
          }
        } else if (pct < 80) {
          a_.remove(k);
        } else {
          Blackhole bh;
          a_.get(k, bh);
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; ++t) threads.emplace_back(mutator, t);
    start.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    std::vector<double> sampleNs;
    for (auto& v : ns) sampleNs.insert(sampleNs.end(), v.begin(), v.end());
    std::sort(sampleNs.begin(), sampleNs.end());
    put.ops = sampleNs.size();
    if (!sampleNs.empty()) {
      put.p50Ns = sampleNs[sampleNs.size() / 2];
      put.p99Ns =
          sampleNs[std::min(sampleNs.size() - 1, sampleNs.size() * 99 / 100)];
    }
    drain(true);
    return put;
  }

  // Leg B catches up at quiescent points — the off-hot-path slot the
  // background service targets.  The bulk of the relocation work happens
  // here, between waves and stage reps, exactly as deployed: evacuation
  // fires when occupancy probes find whole arenas of slack, not raced
  // head-to-head against every put.
  void drain(bool catchUp) {
    a_.collectVersionsNow();
    a_.quiesce();
    if (catchUp && cfg_.compaction) {
      for (int r = 0; r < 2; ++r) leg.retired += a_.compactNow();
    }
  }

  void settleAndSnapshot() {
    if (cfg_.compaction) {
      // Settle: quiescent relocation passes so the final footprint is
      // deterministic (the background trigger is amortized and may not
      // have caught the last rep's garbage yet).
      for (int r = 0; r < 4; ++r) leg.retired += a_.compactNow();
    }
    a_.quiesce();
    const oak::obs::Metrics m = a_.metrics();
    leg.arenaBlocksAfter = m.alloc.arenaBlocks;
    leg.footprintAfter = m.alloc.footprintBytes;
    leg.evacRuns = m.registry.counter(oak::obs::Counter::EvacuationRuns);
    leg.arenasEvacuated =
        m.registry.counter(oak::obs::Counter::ArenasEvacuated);
    leg.slicesRelocated =
        m.registry.counter(oak::obs::Counter::SlicesRelocated);
    leg.bytesRelocated = m.registry.counter(oak::obs::Counter::BytesRelocated);
    if (validationEnabled()) leg.verrors += a_.validateStructure();
  }

 private:
  BenchConfig cfg_;
  int waves_;
  OakAdapter a_;
  std::vector<std::byte> key_;
  std::size_t jitterStep_;
  std::vector<std::byte> value_;
  oak::XorShift rng_;
};

/// Median-p99 rep of a leg's stage measurements.
PutLat medianByP99(std::vector<PutLat> lats) {
  std::sort(lats.begin(), lats.end(),
            [](const PutLat& x, const PutLat& y) { return x.p99Ns < y.p99Ns; });
  return lats[lats.size() / 2];
}

int runCompaction(const Options& o) {
  BenchConfig cfg;
  cfg.keyRange = o.size;
  cfg.keyBytes = o.keySize;
  cfg.valueBytes = o.valueSize;
  cfg.threads = o.threads.empty() ? 2 : o.threads.front();
  cfg.shards = o.shards.empty() ? 1 : o.shards.front();
  cfg.maintThreads = o.maintThreads;
  cfg.generationalValues = true;
  // Pace background evacuation through the maintenance rate limiter (each
  // queued evacuation run declares 1 MiB): the gate certifies the armed,
  // paced relocator the product ships, not an unthrottled storm racing the
  // sampled wave.  Catch-up and settle passes call compactNow() directly
  // and stay unthrottled.
  cfg.maintRateLimitBytesPerSec = envSize("OAK_BENCH_COMPACTION_RATE", 1u << 20);
  // Evacuation scores whole blocks; 1 MiB arenas give it real granularity
  // at smoke scale (an 8 MiB block hosts the entire surviving live set and
  // never drops below the threshold).
  cfg.blockBytes = 1u << 20;
  cfg.compactionOccupancy = 0.6;
  // The wave high-water mark holds the full range live at once plus the
  // pre-remove copies; budget the pool for that, not the surviving 1/5.
  cfg.offHeapSlackPct = 150;
  cfg.totalRamBytes = std::max(cfg.rawDataBytes() * 4, std::size_t{256} << 20);

  const int waves = static_cast<int>(envSize("OAK_BENCH_COMPACTION_WAVES", 3));

  std::printf("compaction bench: %zu keys (%zuB keys, %zuB values), %d waves "
              "(last one latency-sampled), %zu shard(s), %zuKiB blocks\n",
              cfg.keyRange, cfg.keyBytes, cfg.valueBytes, waves, cfg.shards,
              cfg.blockBytes >> 10);

  // Leg A: relocation off — the put-latency baseline and the
  // no-evacuation arena high-water mark.  Leg B: identical churn with
  // background compaction on.  Both maps are prepared first, then the
  // sampled reps alternate A/B so a host-load shift hits both legs.
  BenchConfig base = cfg;
  base.compaction = false;
  BenchConfig on = cfg;
  on.compaction = true;
  CompactionRun runA(base, waves);
  CompactionRun runB(on, waves);
  double pairedRatio = 0;
  if (runA.prepare() && runB.prepare()) {
    const int reps =
        static_cast<int>(envSize("OAK_BENCH_COMPACTION_REPS", 5));
    std::vector<PutLat> latsA, latsB;
    std::vector<double> repRatios;
    for (int rep = 0; rep < reps; ++rep) {
      latsA.push_back(runA.stageRep(rep));
      latsB.push_back(runB.stageRep(rep));
      if (latsA.back().p99Ns > 0) {
        repRatios.push_back(latsB.back().p99Ns / latsA.back().p99Ns);
      }
    }
    runA.leg.put = medianByP99(std::move(latsA));
    runB.leg.put = medianByP99(std::move(latsB));
    if (!repRatios.empty()) {
      // Gate on the median of the per-rep ratios: each rep's A and B
      // stages run back-to-back, so a host-load shift cancels within the
      // pair instead of skewing one leg's whole median.
      std::sort(repRatios.begin(), repRatios.end());
      pairedRatio = repRatios[repRatios.size() / 2];
    }
    runA.settleAndSnapshot();
    runB.settleAndSnapshot();
  }
  const CompactionLeg& a = runA.leg;
  const CompactionLeg& b = runB.leg;
  std::printf("compaction bench: baseline put p50 %.0fns p99 %.0fns, "
              "%llu arena blocks after churn\n",
              a.put.p50Ns, a.put.p99Ns,
              static_cast<unsigned long long>(a.arenaBlocksAfter));
  const double ratio = pairedRatio;
  std::printf("compaction bench: relocating put p50 %.0fns p99 %.0fns "
              "(ratio %.3f), arenas %llu -> %llu, %zu retired in settle, "
              "%llu slices / %llu bytes moved\n",
              b.put.p50Ns, b.put.p99Ns, ratio,
              static_cast<unsigned long long>(a.arenaBlocksAfter),
              static_cast<unsigned long long>(b.arenaBlocksAfter), b.retired,
              static_cast<unsigned long long>(b.slicesRelocated),
              static_cast<unsigned long long>(b.bytesRelocated));

  std::printf(
      "COMPACTION {\"pairs\":%zu,\"waves\":%d,\"sampled_puts\":%llu,"
      "\"threads\":%u,\"shards\":%zu,\"value_bytes\":%zu,\"block_bytes\":%zu,"
      "\"base_put_p50_ns\":%.0f,\"base_put_p99_ns\":%.0f,"
      "\"base_arena_blocks\":%llu,\"base_footprint_bytes\":%llu,"
      "\"compact_put_p50_ns\":%.0f,\"compact_put_p99_ns\":%.0f,"
      "\"put_p99_ratio\":%.4f,"
      "\"arena_blocks_after\":%llu,\"footprint_after\":%llu,"
      "\"arenas_retired\":%zu,\"evacuation_runs\":%llu,"
      "\"arenas_evacuated\":%llu,\"slices_relocated\":%llu,"
      "\"bytes_relocated\":%llu,\"validation_errors\":%zu}\n",
      cfg.keyRange, waves, static_cast<unsigned long long>(b.put.ops),
      cfg.threads, cfg.shards, cfg.valueBytes, cfg.blockBytes,
      a.put.p50Ns, a.put.p99Ns,
      static_cast<unsigned long long>(a.arenaBlocksAfter),
      static_cast<unsigned long long>(a.footprintAfter),
      b.put.p50Ns, b.put.p99Ns, ratio,
      static_cast<unsigned long long>(b.arenaBlocksAfter),
      static_cast<unsigned long long>(b.footprintAfter),
      b.retired, static_cast<unsigned long long>(b.evacRuns),
      static_cast<unsigned long long>(b.arenasEvacuated),
      static_cast<unsigned long long>(b.slicesRelocated),
      static_cast<unsigned long long>(b.bytesRelocated),
      a.verrors + b.verrors);
  std::fflush(stdout);
  return a.verrors + b.verrors == 0 ? 0 : 1;
}

std::vector<std::string> splitList(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ' ' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  o.size = envSize("OAK_BENCH_SIZE", o.size);
  o.durationMs = static_cast<std::uint32_t>(
      envSize("OAK_BENCH_DURATION_MS", o.durationMs));

  bool anyArg = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    anyArg = true;
    if (a == "-b") {
      o.benches = splitList(next());
    } else if (a == "-t") {
      o.threads.clear();
      for (auto& s : splitList(next())) {
        o.threads.push_back(static_cast<unsigned>(std::stoul(s)));
      }
    } else if (a == "-i") {
      o.size = std::stoull(next());
    } else if (a == "-k") {
      o.keySize = std::stoull(next());
    } else if (a == "-v") {
      o.valueSize = std::stoull(next());
    } else if (a == "-u") {
      o.updatePct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-r") {
      o.removePct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-s") {
      o.scanPct = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "-c") {
      o.computePct = 100;
    } else if (a == "-a") {
      o.descending = std::stoul(next()) >= 50;
    } else if (a == "-d") {
      o.durationMs = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "-L") {
      o.scanLength = std::stoull(next());
    } else if (a == "-m") {
      o.ramMb = std::stoull(next());
    } else if (a == "--shards") {
      o.shards.clear();
      for (auto& s : splitList(next())) o.shards.push_back(std::stoull(s));
      if (o.shards.empty()) o.shards.push_back(1);
    } else if (a == "--buffer") {
      o.zeroCopy = true;
    } else if (a == "--stream-iteration") {
      o.stream = true;
    } else if (a == "--churn") {
      o.scenario = "churn";
      applyScenario(o);
    } else if (a == "--no-magazines") {
      oak::mem::FirstFitAllocator::setMagazinesDefaultEnabled(false);
    } else if (a == "--no-snapshot-scans") {
      o.snapshotScans = false;  // after --scenario snapshot-churn
    } else if (a == "--zipf") {
      o.zipfTheta = std::stod(next());
    } else if (a == "--maint-threads") {
      o.maintThreads = std::stoi(next());
    } else if (a == "--scenario") {
      o.scenario = next();
      applyScenario(o);
    } else if (a == "--storage-dir") {
      o.storageDir = next();
    } else if (a == "--fsync") {
      o.fsyncPolicy = next();
    } else if (a == "--csv") {
      o.csvPath = next();
    } else if (a == "-h" || a == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (o.scenario == "recovery") return runRecovery(o);
  if (o.scenario == "compaction") return runCompaction(o);

  if (!anyArg) {
    // Quick sweep of all canned scenarios (CI-friendly defaults).
    Options quick = o;
    quick.size = envSize("OAK_BENCH_SIZE", 20'000);
    quick.durationMs = static_cast<std::uint32_t>(
        envSize("OAK_BENCH_DURATION_MS", 120));
    quick.threads = envThreadList("OAK_BENCH_THREADS", {1, 4});
    for (const char* sc : {"4a", "4c", "4c-copy", "4d", "4e", "4e-stream",
                           "4f", "4f-stream"}) {
      Options run = quick;
      run.scenario = sc;
      applyScenario(run);
      runAll(run);
    }
    return 0;
  }
  runAll(o);
  return 0;
}
