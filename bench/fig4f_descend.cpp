// Figure 4f: descending scans of 10K pairs (§4.2 stack algorithm vs. the
// skiplists' lookup-per-key).  Expected shape: Oak >= 3.5x SkipList-OnHeap
// even with the Set API; Oak-stream roughly doubles Oak-Set.
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;
  mix.scanDescPct = 100;
  return runFig4("Figure 4f", "descending scans vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"Oak-stream", Series::Kind::OakStream},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
