// Figure 3b: single-threaded ingestion of a FIXED dataset while the RAM
// budget varies (§5.2 "Memory efficiency").
//
// Paper (10M pairs = 11 GB raw, RAM 14..26 GB): the off-heap solutions run
// (and run fast) with much less RAM than SkipList-OnHeap, which needs the
// largest budgets and never catches up.  Scaled ~100x: 100K pairs (~110 MB
// raw), budgets 120..280 MiB.
#include <cstdio>
#include <vector>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

using namespace oak::bench;

int main() {
  const std::size_t pairs = envSize("OAK_BENCH_FIG3B_PAIRS", 100'000);
  std::vector<std::size_t> ramMb{120, 140, 160, 180, 200, 220, 240, 260, 280, 300, 320};

  printHeader("Figure 3b", "ingestion throughput, fixed dataset, varying RAM");
  std::printf("dataset: %zu pairs (%.0f MiB raw), single thread\n", pairs,
              static_cast<double>(pairs) * 1124 / (1 << 20));
  printSeriesHeader("RAM-MB");

  for (int alg = 0; alg < 3; ++alg) {
    for (std::size_t mb : ramMb) {
      BenchConfig cfg;
      cfg.keyRange = pairs;
      cfg.totalRamBytes = mb << 20;
      cfg.seed = 1;
      PointResult r;
      const char* name;
      switch (alg) {
        case 0:
          name = "Oak";
          r = runIngestPoint<OakAdapter>(cfg, false);
          break;
        case 1:
          name = "SkipList-OnHeap";
          r = runIngestPoint<OnHeapAdapter>(cfg);
          break;
        default:
          name = "SkipList-OffHeap";
          r = runIngestPoint<OffHeapAdapter>(cfg);
          break;
      }
      printRow(name, static_cast<double>(mb), r);
      std::fflush(stdout);
    }
  }
  return 0;
}
