// Figure 5c: RAM utilization — metadata overhead above raw data (§6).
// Paper: I^2-Oak's overhead is <5% (Oak index + on-heap auxiliaries);
// I^2-legacy's is ~35%.  Deterministic accounting, no timing.
#include "fig5_common.hpp"

using namespace oak::bench;

int main() {
  std::vector<std::size_t> sizes{10'000, 20'000, 30'000, 40'000, 50'000, 60'000, 70'000};
  printHeader("Figure 5c", "Druid I^2 RAM overhead vs. raw data");
  std::printf("%-12s %10s %10s %12s %12s %10s\n", "index", "Ktuples", "raw-MB",
              "total-MB", "extra-MB", "overhead");
  for (int alg = 0; alg < 2; ++alg) {
    for (std::size_t n : sizes) {
      PreparedTuples in = generateTuples(n);
      const std::size_t raw = n * 1100;
      const DruidPoint p = (alg == 0) ? runOakDruid(in, 2048u << 20, raw)
                                      : runLegacyDruid(in, 2048u << 20);
      // Total RAM actually holding the index: live heap + off-heap arenas.
      const double rawMb = static_cast<double>(p.rawBytes) / (1 << 20);
      const double totalMb =
          static_cast<double>(p.heapLiveBytes + p.offHeapBytes) / (1 << 20);
      const double extra = totalMb - rawMb;
      std::printf("%-12s %10.0f %10.1f %12.1f %12.1f %9.1f%%\n",
                  alg == 0 ? "I^2-Oak" : "I^2-legacy",
                  static_cast<double>(n) / 1e3, rawMb, totalMb, extra,
                  100.0 * extra / rawMb);
      std::fflush(stdout);
    }
  }
  return 0;
}
