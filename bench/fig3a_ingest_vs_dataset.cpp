// Figure 3a: single-threaded ingestion throughput under a FIXED RAM budget
// as the dataset grows (§5.2 "Memory efficiency").
//
// Paper (128 GB RAM): SkipList-OnHeap caps at 40M pairs, SkipList-OffHeap
// at 60M, Oak at 100M; Oak is fastest throughout and degrades most slowly.
// Scaled here ~1000x: fixed budget (default 384 MiB, OAK_BENCH_FIG3_RAM_MB)
// and datasets 12.5K..300K pairs.  "OOM" rows are the capacity caps.
#include <cstdio>
#include <vector>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

using namespace oak::bench;

int main() {
  const std::size_t ramMb = envSize("OAK_BENCH_FIG3_RAM_MB", 384);
  std::vector<std::size_t> sizes{12'500, 25'000, 50'000, 100'000, 150'000, 200'000,
                                 225'000, 250'000, 275'000, 300'000, 325'000};
  if (const char* s = oak::env::raw("OAK_BENCH_FIG3_SIZES")) {
    sizes.clear();
    for (const char* p = s; *p != '\0';) {
      sizes.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
      while (*p == ' ') ++p;
    }
  }

  printHeader("Figure 3a", "ingestion throughput, fixed RAM, growing dataset");
  std::printf("RAM budget: %zu MiB, single thread; raw pair = 100B key + 1KB value\n",
              ramMb);
  printSeriesHeader("raw-MB");

  for (int alg = 0; alg < 3; ++alg) {
    for (std::size_t n : sizes) {
      BenchConfig cfg;
      cfg.keyRange = n;
      cfg.totalRamBytes = ramMb << 20;
      cfg.seed = 1;
      const double rawMb =
          static_cast<double>(cfg.rawDataBytes()) / (1 << 20);
      PointResult r;
      const char* name;
      switch (alg) {
        case 0:
          name = "Oak";
          r = runIngestPoint<OakAdapter>(cfg, false);
          break;
        case 1:
          name = "SkipList-OnHeap";
          r = runIngestPoint<OnHeapAdapter>(cfg);
          break;
        default:
          name = "SkipList-OffHeap";
          r = runIngestPoint<OffHeapAdapter>(cfg);
          break;
      }
      printRow(name, rawMb, r);
      std::fflush(stdout);
    }
  }
  return 0;
}
