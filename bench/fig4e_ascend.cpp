// Figure 4e: ascending scans of 10K pairs (scaled; OAK_BENCH_SCAN_LEN).
// Throughput counts scanned entries.  Expected shape: Oak's Set API pays
// for per-entry ephemeral views (~2x slower than the skiplists); Oak's
// Stream API wins on chunk locality (paper: ~8x over SkipList-OnHeap).
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;
  mix.scanAscPct = 100;
  return runFig4("Figure 4e", "ascending scans vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"Oak-stream", Series::Kind::OakStream},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
