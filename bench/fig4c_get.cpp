// Figure 4c: get-only workload (§5.2).  Includes the legacy-API Oak-Copy
// series: "copying induces a significant penalty and inhibits scalability".
// Expected shape: Oak > SkipList-OnHeap (paper: ~1.7x) > Oak-Copy.
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;  // 100% gets
  return runFig4("Figure 4c", "get-only throughput vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"Oak-Copy", Series::Kind::OakCopy},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
