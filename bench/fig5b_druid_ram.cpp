// Figure 5b: Druid I^2 ingestion of a fixed dataset under varying RAM (§6).
// Paper (7M tuples): I^2-legacy cannot run below 29 GB at all; I^2-Oak runs
// (and fast) across the whole 25..32 GB range.  Scaled ~100x: 70K tuples,
// 220..340 MiB budgets.
#include "fig5_common.hpp"

using namespace oak::bench;

int main() {
  const std::size_t tuples = envSize("OAK_BENCH_FIG5B_TUPLES", 70'000);
  std::vector<std::size_t> ramMb{120, 140, 160, 180, 200, 220, 240, 280, 320};
  printHeader("Figure 5b", "Druid I^2 ingestion vs. RAM, fixed dataset");
  std::printf("dataset: %zu tuples, single thread, rollup index\n", tuples);
  printDruidHeader("RAM-MB");
  PreparedTuples in = generateTuples(tuples);
  const std::size_t raw = tuples * 1100;
  for (int alg = 0; alg < 2; ++alg) {
    for (std::size_t mb : ramMb) {
      const DruidPoint p = (alg == 0) ? runOakDruid(in, mb << 20, raw)
                                      : runLegacyDruid(in, mb << 20);
      printDruidRow(alg == 0 ? "I^2-Oak" : "I^2-legacy",
                    static_cast<double>(mb), p);
      std::fflush(stdout);
    }
  }
  return 0;
}
