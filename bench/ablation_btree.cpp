// Ablation: the MapDB-style off-heap B+-tree vs. Oak (§1.2/§5.1 — the
// comparison the paper summarizes as "at least an order-of-magnitude slower
// than Oak" and omits from its plots).
//
// Under concurrency the tree's global lock serializes updates; reads share
// the lock but still bounce its cache line.  Expect Oak to dominate and the
// gap to widen with threads.
#include <cstdio>

#include "baselines/btree_offheap.hpp"
#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

namespace oak::bench {

/// Adapter over OffHeapBTree for the standard driver.
class BTreeAdapter {
 public:
  explicit BTreeAdapter(const BenchConfig& cfg) {
    const RamSplit split = splitRam(cfg, true);
    heap_ = std::make_unique<mheap::ManagedHeap>(heapConfig(split.heapBytes));
    pool_ = std::make_unique<mem::BlockPool>(mem::BlockPool::Config{
        .blockBytes = 8u << 20, .budgetBytes = split.offHeapBytes});
    tree_ = std::make_unique<bl::OffHeapBTree>(*pool_);
  }

  const char* name() const { return "MapDB-like BTree"; }
  bool ingest(ByteSpan key, ByteSpan value) { return tree_->putIfAbsent(key, value); }
  void put(ByteSpan key, ByteSpan value) { tree_->put(key, value); }
  bool get(ByteSpan key, Blackhole& bh) {
    return tree_->get(key, [&](ByteSpan s) { bh.consume(s); });
  }
  void compute(ByteSpan) {}  // unused in this ablation
  std::size_t scanAsc(ByteSpan from, std::size_t n, Blackhole& bh, bool) {
    return tree_->scanAscend(from, n, [&](ByteSpan k, ByteSpan v) {
      bh.consume(k);
      bh.consume(v);
    });
  }
  std::size_t scanDesc(ByteSpan, std::size_t, Blackhole&, bool) { return 0; }
  mheap::GcStats gcStats() const { return heap_->stats(); }
  std::size_t offHeapFootprint() const { return tree_->offHeapFootprintBytes(); }
  std::size_t finalSize() { return tree_->size(); }

 private:
  std::unique_ptr<mheap::ManagedHeap> heap_;
  std::unique_ptr<mem::BlockPool> pool_;
  std::unique_ptr<bl::OffHeapBTree> tree_;
};

}  // namespace oak::bench

int main() {
  using namespace oak::bench;
  BenchConfig cfg = standardConfig();
  const auto threads = standardThreads();

  for (int wl = 0; wl < 2; ++wl) {
    Mix mix;
    const char* title;
    if (wl == 0) {
      mix.putPct = 100;
      title = "put-only: Oak vs MapDB-like off-heap B+-tree";
    } else {
      title = "get-only: Oak vs MapDB-like off-heap B+-tree";
    }
    printHeader("Ablation (B-tree)", title);
    printSeriesHeader("threads");
    for (unsigned t : threads) {
      BenchConfig c = cfg;
      c.threads = t;
      printRow("Oak", t, runPoint<OakAdapter>(c, mix, false));
      std::fflush(stdout);
    }
    for (unsigned t : threads) {
      BenchConfig c = cfg;
      c.threads = t;
      printRow("MapDB-like BTree", t, runPoint<BTreeAdapter>(c, mix));
      std::fflush(stdout);
    }
  }
  return 0;
}
