// Figure 4a: put-only workload, throughput vs. worker threads (§5.2).
// Expected shape: Oak clearly ahead of SkipList-OnHeap (paper: >= 2x);
// SkipList-OffHeap between them.
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;
  mix.putPct = 100;
  return runFig4("Figure 4a", "put-only throughput vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
