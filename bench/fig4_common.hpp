// Shared harness for the Figure-4 thread-scaling benchmarks (§5.2).
//
// Each fig4 binary fixes a workload mix and sweeps the worker-thread count
// for every compared solution, printing one series per solution — the same
// rows the paper plots.  Dataset and durations are scaled for this host and
// overridable via OAK_BENCH_* (see EXPERIMENTS.md).
#pragma once

#include <cstdio>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"
#include "benchcore/workload.hpp"

namespace oak::bench {

struct Series {
  const char* label;
  enum class Kind { OakZc, OakCopy, OakStream, OnHeap, OffHeap } kind;
};

inline PointResult runSeriesPoint(const Series& s, const BenchConfig& cfg,
                                  Mix mix) {
  switch (s.kind) {
    case Series::Kind::OakZc:
      return runPoint<OakAdapter>(cfg, mix, /*copyApi=*/false);
    case Series::Kind::OakCopy:
      return runPoint<OakAdapter>(cfg, mix, /*copyApi=*/true);
    case Series::Kind::OakStream:
      mix.streamScans = true;
      return runPoint<OakAdapter>(cfg, mix, /*copyApi=*/false);
    case Series::Kind::OnHeap:
      return runPoint<OnHeapAdapter>(cfg, mix);
    case Series::Kind::OffHeap:
      return runPoint<OffHeapAdapter>(cfg, mix);
  }
  return {};
}

inline int runFig4(const char* figure, const char* title, const Mix& mix,
                   std::initializer_list<Series> series) {
  BenchConfig cfg = standardConfig();
  const auto threads = standardThreads();
  printHeader(figure, title);
  std::printf(
      "dataset=%zu pairs (key %zuB, value %zuB), RAM=%zu MiB, %u ms/point, "
      "shards=%zu\n",
      cfg.keyRange, cfg.keyBytes, cfg.valueBytes, cfg.totalRamBytes >> 20,
      cfg.durationMs, cfg.shards);
  printSeriesHeader("threads");
  for (const Series& s : series) {
    for (unsigned t : threads) {
      BenchConfig c = cfg;
      c.threads = t;
      const PointResult r = runSeriesPoint(s, c, mix);
      printRow(s.label, static_cast<double>(t), r);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace oak::bench
