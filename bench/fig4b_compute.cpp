// Figure 4b: in-place incremental updates (computeIfPresent for Oak, merge
// for the skiplists), 8-byte modification per op (§5.2).
// Expected shape: all solutions close together, near-linear scaling.
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;
  mix.computePct = 100;
  return runFig4("Figure 4b", "computeIfPresent / merge vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
