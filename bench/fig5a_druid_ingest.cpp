// Figure 5a: Druid I^2 single-thread ingestion throughput vs. dataset size
// under a fixed RAM budget (§6).  Paper (30 GB): equal at 1M tuples; at 7M
// tuples I^2-Oak ingests ~2x faster than I^2-legacy (GC burden).  Scaled
// ~100x: 300 MiB budget, 10K..70K tuples.
#include "fig5_common.hpp"

using namespace oak::bench;

int main() {
  const std::size_t ramMb = envSize("OAK_BENCH_FIG5_RAM_MB", 300);
  std::vector<std::size_t> sizes{10'000, 20'000, 30'000, 40'000, 50'000, 60'000, 70'000};
  printHeader("Figure 5a", "Druid I^2 ingestion vs. dataset, fixed RAM");
  std::printf("RAM budget: %zu MiB, single thread, rollup index\n", ramMb);
  printDruidHeader("Ktuples");
  for (int alg = 0; alg < 2; ++alg) {
    for (std::size_t n : sizes) {
      PreparedTuples in = generateTuples(n);
      const std::size_t raw = n * 1100;
      const DruidPoint p = (alg == 0) ? runOakDruid(in, ramMb << 20, raw)
                                      : runLegacyDruid(in, ramMb << 20);
      printDruidRow(alg == 0 ? "I^2-Oak" : "I^2-legacy",
                    static_cast<double>(n) / 1e3, p);
      std::fflush(stdout);
    }
  }
  return 0;
}
