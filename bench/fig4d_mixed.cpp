// Figure 4d: 95% get / 5% put (§5.2).
// Expected shape: Oak 1.7x-2x over SkipList-OnHeap; SkipList-OffHeap slower
// than both.
#include "fig4_common.hpp"

int main() {
  using namespace oak::bench;
  Mix mix;
  mix.putPct = 5;
  return runFig4("Figure 4d", "95% get / 5% put vs. threads", mix,
                 {{"Oak", Series::Kind::OakZc},
                  {"SkipList-OnHeap", Series::Kind::OnHeap},
                  {"SkipList-OffHeap", Series::Kind::OffHeap}});
}
