// Shared harness for the Druid incremental-index benchmarks (Figure 5, §6).
//
// Workload per the paper: unique ~1.25 KB tuples whose primary dimension is
// the current timestamp in ms (spatially-local ingestion), generated in
// advance, fed single-threaded into a rollup index.  Scaled ~100x down.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "benchcore/driver.hpp"
#include "benchcore/workload.hpp"
#include "druid/incremental_index.hpp"

namespace oak::bench {

using druid::AggType;
using druid::AggregatorSpec;
using druid::MetricValue;
using druid::TupleIn;

/// Rollup spec sized so key+row ~ 1.1 KB, close to the paper's 1.25 KB
/// tuples: counters + an HLL unique sketch + a quantile sketch.
inline AggregatorSpec druidSpec() {
  return AggregatorSpec({AggType::Count, AggType::LongSum, AggType::DoubleSum,
                         AggType::HllUnique, AggType::Quantiles});
}

struct PreparedTuples {
  std::vector<TupleIn> tuples;
  std::vector<std::string> dimPool;  // stable backing for string_views
};

/// "In order to measure ingestion performance in isolation, all the input
///  is generated in advance."
inline PreparedTuples generateTuples(std::size_t n, std::uint64_t seed = 7) {
  PreparedTuples out;
  out.dimPool.reserve(200);
  for (int i = 0; i < 100; ++i) out.dimPool.push_back("campaign-" + std::to_string(i));
  for (int i = 0; i < 100; ++i) out.dimPool.push_back("channel-" + std::to_string(i));
  XorShift rng(seed);
  out.tuples.reserve(n);
  std::int64_t ts = 1'700'000'000'000;  // epoch ms; advances monotonically
  for (std::size_t i = 0; i < n; ++i) {
    TupleIn t;
    ts += 1;  // unique timestamps: every tuple creates a row (paper: unique)
    t.timestamp = ts;
    t.dims = {out.dimPool[rng.nextBounded(100)], out.dimPool[100 + rng.nextBounded(100)]};
    t.metrics.resize(5);
    t.metrics[1].number = static_cast<double>(rng.nextBounded(1000));
    t.metrics[2].number = rng.nextDouble() * 100.0;
    t.metrics[3].hash64 = rng.nextBounded(1u << 20);  // "user id" for uniques
    t.metrics[4].number = rng.nextDouble() * 1000.0;  // latency for quantiles
    out.tuples.push_back(std::move(t));
  }
  return out;
}

struct DruidPoint {
  double ktuplesPerSec = 0;
  bool oom = false;
  std::size_t rows = 0;
  std::size_t heapLiveBytes = 0;
  std::size_t offHeapBytes = 0;
  std::uint64_t rawBytes = 0;
  mheap::GcStats gc{};
};

template <class Index>
DruidPoint ingestTuples(Index& idx, const PreparedTuples& in,
                        mheap::ManagedHeap& heap) {
  DruidPoint p;
  const double t0 = nowSeconds();
  try {
    for (const TupleIn& t : in.tuples) idx.add(t);
  } catch (const std::bad_alloc&) {
    p.oom = true;
    return p;
  }
  const double dt = nowSeconds() - t0;
  p.ktuplesPerSec = static_cast<double>(in.tuples.size()) / dt / 1e3;
  p.rows = idx.rowCount();
  p.heapLiveBytes = heap.stats().liveBytes;
  p.offHeapBytes = idx.offHeapBytes();
  p.rawBytes = idx.rawDataBytes();
  p.gc = heap.stats();
  return p;
}

/// Builds an I2-Oak with the paper's memory split and ingests.
inline DruidPoint runOakDruid(const PreparedTuples& in, std::size_t totalRamBytes,
                              std::size_t expectedRawBytes) {
  std::size_t off = expectedRawBytes + expectedRawBytes / 5 + (16u << 20);
  if (off > totalRamBytes * 7 / 8) off = totalRamBytes * 7 / 8;
  mheap::ManagedHeap heap(
      mheap::ManagedHeap::Config{.budgetBytes = totalRamBytes - off});
  mem::BlockPool pool(
      mem::BlockPool::Config{.blockBytes = 8u << 20, .budgetBytes = off});
  auto ocfg = OakConfig{}
                 .withChunkCapacity(2048)
                 .withMem(MemConfig{}.withMetaHeap(&heap).withPool(&pool));
  try {
    druid::OakIncrementalIndex idx(druidSpec(), 2, /*rollup=*/true, heap, ocfg);
    return ingestTuples(idx, in, heap);
  } catch (const std::bad_alloc&) {
    DruidPoint p;
    p.oom = true;
    return p;
  }
}

inline DruidPoint runLegacyDruid(const PreparedTuples& in, std::size_t totalRamBytes) {
  mheap::ManagedHeap heap(
      mheap::ManagedHeap::Config{.budgetBytes = totalRamBytes});
  try {
    druid::LegacyIncrementalIndex idx(druidSpec(), 2, /*rollup=*/true, heap, heap);
    return ingestTuples(idx, in, heap);
  } catch (const std::bad_alloc&) {
    DruidPoint p;
    p.oom = true;
    return p;
  }
}

inline void printDruidRow(const char* name, double x, const DruidPoint& p) {
  if (p.oom) {
    std::printf("%-12s %10.0f %12s %10s %12s %12s %10s\n", name, x, "OOM", "-", "-",
                "-", "-");
    return;
  }
  std::printf("%-12s %10.0f %12.1f %10zu %12.1f %12.1f %10.1f\n", name, x,
              p.ktuplesPerSec, p.rows,
              static_cast<double>(p.heapLiveBytes) / (1 << 20),
              static_cast<double>(p.offHeapBytes) / (1 << 20),
              static_cast<double>(p.gc.gcNanos) / 1e6);
}

inline void printDruidHeader(const char* xLabel) {
  std::printf("%-12s %10s %12s %10s %12s %12s %10s\n", "index", xLabel,
              "Ktuples/sec", "rows", "heap-MB", "offheap-MB", "GC-ms");
}

}  // namespace oak::bench
