// Ablations over Oak's own design choices (DESIGN.md §4):
//
//   A. chunk capacity — the locality/rebalance-cost trade-off behind the
//      paper's 4K-entries-per-chunk default (§5.1);
//   B. rebalance threshold — how large the unsorted bypass suffix may grow
//      before compaction (§5.1: "whenever the unsorted linked list exceeds
//      half of the sorted prefix");
//   C. Set vs Stream scan APIs at several scan lengths — isolating the
//      ephemeral-object cost of §2.2 from the locality benefit.
#include <cstdio>
#include <memory>

#include "benchcore/adapters.hpp"
#include "benchcore/driver.hpp"

using namespace oak;
using namespace oak::bench;

namespace {

/// Oak adapter with a custom OakConfig (capacity / threshold knobs).
class TunedOakAdapter {
 public:
  TunedOakAdapter(const BenchConfig& cfg, std::int32_t chunkCapacity,
                  double unsortedRatio) {
    const RamSplit split = splitRam(cfg, true);
    heap_ = std::make_unique<mheap::ManagedHeap>(heapConfig(split.heapBytes));
    pool_ = std::make_unique<mem::BlockPool>(mem::BlockPool::Config{
        .blockBytes = 8u << 20, .budgetBytes = split.offHeapBytes});
    auto ocfg = OakConfig{}
                   .withChunkCapacity(chunkCapacity)
                   .withMaxUnsortedRatio(unsortedRatio)
                   .withMem(MemConfig{}.withMetaHeap(heap_.get()).withPool(pool_.get()));
    map_ = std::make_unique<OakCoreMap<>>(ocfg);
  }

  bool ingest(ByteSpan key, ByteSpan value) { return map_->putIfAbsent(key, value); }
  void put(ByteSpan key, ByteSpan value) { map_->put(key, value); }
  bool get(ByteSpan key, Blackhole& bh) {
    auto v = map_->get(key);
    if (!v) return false;
    v->read([&](ByteSpan s) { bh.consume(s); });
    return true;
  }
  void compute(ByteSpan key) {
    map_->computeIfPresent(key, [](OakWBuffer& w) { w.putU64(0, w.getU64(0) + 1); });
  }
  std::size_t scanAsc(ByteSpan from, std::size_t n, Blackhole& bh, bool stream) {
    std::size_t cnt = 0;
    std::optional<ByteVec> lo;
    if (!from.empty()) lo = toVec(from);
    for (auto it = map_->ascend(std::move(lo), std::nullopt, ScanOptions::ascending(stream));
         it.valid() && cnt < n; it.next()) {
      auto e = it.entry();
      bh.consume(e.key);
      ++cnt;
    }
    return cnt;
  }
  std::size_t scanDesc(ByteSpan from, std::size_t n, Blackhole& bh, bool stream) {
    std::size_t cnt = 0;
    std::optional<ByteVec> hi;
    if (!from.empty()) hi = toVec(from);
    for (auto it = map_->descend(std::nullopt, std::move(hi), ScanOptions::descending(stream));
         it.valid() && cnt < n; it.next()) {
      auto e = it.entry();
      bh.consume(e.key);
      ++cnt;
    }
    return cnt;
  }
  mheap::GcStats gcStats() const { return heap_->stats(); }
  std::size_t offHeapFootprint() const { return map_->offHeapFootprintBytes(); }
  std::size_t finalSize() { return map_->sizeSlow(); }
  std::uint64_t rebalances() const { return map_->rebalanceCount(); }

 private:
  std::unique_ptr<mheap::ManagedHeap> heap_;
  std::unique_ptr<mem::BlockPool> pool_;
  std::unique_ptr<OakCoreMap<>> map_;
};

}  // namespace

int main() {
  BenchConfig cfg = standardConfig();
  cfg.threads = standardThreads().back();

  // ---- A: chunk capacity sweep (put-heavy + get-only) --------------------
  printHeader("Ablation A", "chunk capacity (entries) — put and get");
  std::printf("%-10s %12s %12s %12s %12s\n", "capacity", "put-Kops", "get-Kops",
              "rebalances", "scan-Kops");
  for (std::int32_t cap : {256, 512, 1024, 2048, 4096, 8192}) {
    Mix put;
    put.putPct = 100;
    BenchConfig c = cfg;
    double putK, getK, scanK;
    std::uint64_t reb;
    {
      TunedOakAdapter a(c, cap, 0.5);
      ingestStage(a, c, c.keyRange / 2, nullptr);
      putK = sustainedStage(a, c, put).kops;
      reb = a.rebalances();
      Mix get;  // all gets
      getK = sustainedStage(a, c, get).kops;
      Mix scan;
      scan.scanAscPct = 100;
      scan.streamScans = true;
      scanK = sustainedStage(a, c, scan).kops;
    }
    std::printf("%-10d %12.1f %12.1f %12llu %12.1f\n", cap, putK, getK,
                static_cast<unsigned long long>(reb), scanK);
    std::fflush(stdout);
  }

  // ---- B: rebalance threshold sweep --------------------------------------
  printHeader("Ablation B", "max unsorted-suffix ratio before rebalance");
  std::printf("%-10s %12s %12s %12s\n", "ratio", "put-Kops", "get-Kops", "rebalances");
  for (double ratio : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    Mix put;
    put.putPct = 100;
    BenchConfig c = cfg;
    TunedOakAdapter a(c, 2048, ratio);
    ingestStage(a, c, c.keyRange / 2, nullptr);
    const double putK = sustainedStage(a, c, put).kops;
    Mix get;
    const double getK = sustainedStage(a, c, get).kops;
    std::printf("%-10.3f %12.1f %12.1f %12llu\n", ratio, putK, getK,
                static_cast<unsigned long long>(a.rebalances()));
    std::fflush(stdout);
  }

  // ---- D: value-header reclamation policy (KeepHeaders vs Generational) --
  printHeader("Ablation D", "value reclamation: KeepHeaders vs Generational");
  std::printf("%-14s %12s %12s %16s\n", "policy", "churn-Kops", "get-Kops",
              "offheap-live-MB");
  for (int mode = 0; mode < 2; ++mode) {
    BenchConfig c = cfg;
    mheap::ManagedHeap heap(heapConfig(splitRam(c, true).heapBytes));
    mem::BlockPool pool(mem::BlockPool::Config{
        .blockBytes = 8u << 20, .budgetBytes = splitRam(c, true).offHeapBytes});
    auto ocfg = OakConfig{}
                   .withMem(MemConfig{}.withMetaHeap(&heap).withPool(&pool).withReclaim(mode == 0 ? ValueReclaim::KeepHeaders : ValueReclaim::Generational));
    OakCoreMap<> map(ocfg);
    // put+remove churn over a small range: KeepHeaders leaks a header per
    // remove; Generational recycles them.
    XorShift rng(7);
    std::vector<std::byte> key(c.keyBytes);
    std::vector<std::byte> value(c.valueBytes, std::byte{0x33});
    const double t0 = nowSeconds();
    constexpr int kChurn = 200000;
    for (int i = 0; i < kChurn; ++i) {
      makeKey({key.data(), key.size()}, rng.nextBounded(1024));
      if ((i & 1) == 0) {
        map.put({key.data(), key.size()}, {value.data(), value.size()});
      } else {
        map.remove({key.data(), key.size()});
      }
    }
    const double churnKops = kChurn / (nowSeconds() - t0) / 1e3;
    const double t1 = nowSeconds();
    std::uint64_t hits = 0;
    for (int i = 0; i < 100000; ++i) {
      makeKey({key.data(), key.size()}, rng.nextBounded(1024));
      hits += map.containsKey({key.data(), key.size()}) ? 1 : 0;
    }
    const double getKops = 100000 / (nowSeconds() - t1) / 1e3;
    std::printf("%-14s %12.1f %12.1f %16.2f\n",
                mode == 0 ? "KeepHeaders" : "Generational", churnKops, getKops,
                static_cast<double>(map.offHeapAllocatedBytes()) / (1 << 20));
    std::fflush(stdout);
  }

  // ---- C: Set vs Stream across scan lengths ------------------------------
  printHeader("Ablation C", "Set vs Stream scan APIs across scan lengths");
  std::printf("%-10s %14s %14s %14s %14s\n", "length", "asc-Set", "asc-Stream",
              "desc-Set", "desc-Stream");
  for (std::size_t len : {10u, 100u, 1000u, 10000u}) {
    BenchConfig c = cfg;
    c.scanLength = len;
    TunedOakAdapter a(c, 2048, 0.5);
    ingestStage(a, c, c.keyRange / 2, nullptr);
    auto run = [&](bool desc, bool stream) {
      Mix m;
      (desc ? m.scanDescPct : m.scanAscPct) = 100;
      m.streamScans = stream;
      return sustainedStage(a, c, m).kops;
    };
    std::printf("%-10zu %14.1f %14.1f %14.1f %14.1f\n", len, run(false, false),
                run(false, true), run(true, false), run(true, true));
    std::fflush(stdout);
  }
  return 0;
}
