// Micro-benchmarks (google-benchmark) for every substrate: the costs the
// figure-level benchmarks are built from.  Useful for regression tracking
// and for attributing end-to-end differences to components.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#include "baselines/onheap_skiplist_map.hpp"
#include "common/random.hpp"
#include "mem/memory_manager.hpp"
#include "mheap/managed_heap.hpp"
#include "oak/core_map.hpp"
#include "skiplist/skiplist.hpp"
#include "sync/ebr.hpp"
#include "sync/word_rwlock.hpp"

namespace {

using namespace oak;

// ------------------------------------------------------------- mem
void BM_AllocFree(benchmark::State& state) {
  mem::BlockPool pool({.blockBytes = 8u << 20, .budgetBytes = SIZE_MAX});
  mem::FirstFitAllocator alloc(pool);
  const auto len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    mem::Ref r = alloc.alloc(len);
    benchmark::DoNotOptimize(r);
    alloc.free(r);
  }
}
BENCHMARK(BM_AllocFree)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AllocBumpOnly(benchmark::State& state) {
  mem::BlockPool pool({.blockBytes = 8u << 20, .budgetBytes = SIZE_MAX});
  std::optional<mem::FirstFitAllocator> alloc;
  alloc.emplace(pool);
  std::size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc->alloc(64));
    if (++n == 100000) {  // reset before exhausting the pool address space
      state.PauseTiming();
      alloc.emplace(pool);
      n = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_AllocBumpOnly);

// ------------------------------------------------------------- mheap
void BM_ManagedAllocFree(benchmark::State& state) {
  mheap::ManagedHeap heap({.budgetBytes = 1u << 30});
  for (auto _ : state) {
    void* p = heap.alloc(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
}
BENCHMARK(BM_ManagedAllocFree)->Arg(48)->Arg(1024);

void BM_EphemeralObject(benchmark::State& state) {
  mheap::ManagedHeap heap({.budgetBytes = 1u << 30});
  for (auto _ : state) heap.ephemeralObject(48);
}
BENCHMARK(BM_EphemeralObject);

// ------------------------------------------------------------- sync
void BM_RwLockRead(benchmark::State& state) {
  static sync::WordRwLock lock;
  for (auto _ : state) {
    lock.acquireRead();
    lock.releaseRead();
  }
}
BENCHMARK(BM_RwLockRead)->Threads(1)->Threads(4);

void BM_RwLockWrite(benchmark::State& state) {
  static sync::WordRwLock lock;
  for (auto _ : state) {
    lock.acquireWrite();
    lock.releaseWrite();
  }
}
BENCHMARK(BM_RwLockWrite)->Threads(1)->Threads(4);

void BM_EbrGuard(benchmark::State& state) {
  static sync::Ebr ebr;
  for (auto _ : state) {
    sync::Ebr::Guard g(ebr);
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_EbrGuard)->Threads(1)->Threads(4);

// ------------------------------------------------------------- skiplist
struct U64Cmp {
  int operator()(const std::uint64_t& a, const std::uint64_t& b) const noexcept {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

void BM_SkipListGet(benchmark::State& state) {
  static sl::SkipList<std::uint64_t, std::uint64_t*, U64Cmp>* list = [] {
    auto* l = new sl::SkipList<std::uint64_t, std::uint64_t*, U64Cmp>();
    static std::uint64_t sink = 7;
    for (std::uint64_t i = 0; i < 100000; ++i) l->put(i, &sink);
    return l;
  }();
  XorShift rng(state.thread_index() + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list->get(rng.nextBounded(100000)));
  }
}
BENCHMARK(BM_SkipListGet)->Threads(1)->Threads(4);

// ------------------------------------------------------------- oak core
OakCoreMap<>& prefilledOak() {
  static OakCoreMap<>* map = [] {
    auto* m = new OakCoreMap<>();
    std::byte key[100];
    std::byte val[1024] = {};
    for (std::uint64_t i = 0; i < 100000; ++i) {
      storeU64BE(key, i);
      for (int j = 8; j < 100; ++j) key[j] = std::byte{0x2e};
      m->putIfAbsent({key, 100}, {val, 1024});
    }
    return m;
  }();
  return *map;
}

void BM_OakGet(benchmark::State& state) {
  auto& map = prefilledOak();
  XorShift rng(state.thread_index() + 7);
  std::byte key[100];
  for (int j = 8; j < 100; ++j) key[j] = std::byte{0x2e};
  for (auto _ : state) {
    storeU64BE(key, rng.nextBounded(100000));
    benchmark::DoNotOptimize(map.containsKey({key, 100}));
  }
}
BENCHMARK(BM_OakGet)->Threads(1)->Threads(4);

void BM_OakComputeIfPresent(benchmark::State& state) {
  auto& map = prefilledOak();
  XorShift rng(state.thread_index() + 11);
  std::byte key[100];
  for (int j = 8; j < 100; ++j) key[j] = std::byte{0x2e};
  for (auto _ : state) {
    storeU64BE(key, rng.nextBounded(100000));
    map.computeIfPresent({key, 100},
                         [](OakWBuffer& w) { w.putU64(0, w.getU64(0) + 1); });
  }
}
BENCHMARK(BM_OakComputeIfPresent)->Threads(1)->Threads(4);

void BM_OakAscendStream(benchmark::State& state) {
  auto& map = prefilledOak();
  XorShift rng(3);
  std::byte key[100];
  for (int j = 8; j < 100; ++j) key[j] = std::byte{0x2e};
  for (auto _ : state) {
    storeU64BE(key, rng.nextBounded(90000));
    std::size_t n = 0;
    for (auto it = map.ascend(toVec(ByteSpan{key, 100}), std::nullopt, ScanOptions::streaming());
         it.valid() && n < 100; it.next()) {
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_OakAscendStream);

// GCC 12 std::optional maybe-uninitialized false positive in the inlined
// iterator construction (same note as oak/core_map.hpp).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void BM_OakDescendStream(benchmark::State& state) {
  auto& map = prefilledOak();
  XorShift rng(5);
  std::byte key[100];
  for (int j = 8; j < 100; ++j) key[j] = std::byte{0x2e};
  for (auto _ : state) {
    storeU64BE(key, 10000 + rng.nextBounded(90000));
    std::size_t n = 0;
    std::optional<ByteVec> hi = toVec(ByteSpan{key, 100});
    for (auto it = map.descend(std::nullopt, std::move(hi), ScanOptions::descending(true));
         it.valid() && n < 100; it.next()) {
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_OakDescendStream);
#pragma GCC diagnostic pop

// ------------------------------------------------------------- bytes
void BM_CompareKeys100B(benchmark::State& state) {
  std::byte a[100], b[100];
  for (int i = 0; i < 100; ++i) a[i] = b[i] = std::byte(i);
  b[99] = std::byte{0xff};
  for (auto _ : state) {
    benchmark::DoNotOptimize(compareBytes({a, 100}, {b, 100}));
  }
}
BENCHMARK(BM_CompareKeys100B);

}  // namespace

BENCHMARK_MAIN();
