#!/usr/bin/env bash
# Compile-fail test for the thread-safety contract (DESIGN.md §10a).
#
#   tools/thread_safety_check.sh
#
# Proves the OAK_* capability annotations are live, not decorative:
#   1. ts_positive.cpp (guarded access) compiles with the host compiler —
#      the macros are harmless no-ops off Clang;
#   2. with clang++ present, ts_positive.cpp is clean under
#      -Wthread-safety -Werror=thread-safety;
#   3. ts_negative.cpp (unguarded read of an OAK_GUARDED_BY field) is legal
#      C++ — accepted WITHOUT the analysis flags;
#   4. the same file is REJECTED with them, with a thread-safety diagnostic.
#
# Steps 2–4 skip gracefully (exit 0) when clang++ is absent; the CI
# `thread-safety` job runs them for real.
set -euo pipefail

cd "$(dirname "$0")/.."

FIXTURES=tests/lint_fixtures
FLAGS=(-fsyntax-only -std=c++20 -Isrc)
TSA_FLAGS=(-Wthread-safety -Werror=thread-safety)

HOST_CXX="${CXX:-c++}"
echo "thread_safety_check: [1/4] ${HOST_CXX} accepts ts_positive.cpp"
"${HOST_CXX}" "${FLAGS[@]}" "${FIXTURES}/ts_positive.cpp"

CLANG="$(command -v clang++ || true)"
if [[ -z "${CLANG}" ]]; then
  echo "thread_safety_check: clang++ not found; annotation enforcement is" >&2
  echo "  Clang-only — steps 2-4 skipped (CI runs them in the" >&2
  echo "  thread-safety job)." >&2
  exit 0
fi

echo "thread_safety_check: [2/4] clang++ -Wthread-safety accepts ts_positive.cpp"
"${CLANG}" "${FLAGS[@]}" "${TSA_FLAGS[@]}" "${FIXTURES}/ts_positive.cpp"

echo "thread_safety_check: [3/4] clang++ (no analysis) accepts ts_negative.cpp"
"${CLANG}" "${FLAGS[@]}" "${FIXTURES}/ts_negative.cpp"

echo "thread_safety_check: [4/4] clang++ -Werror=thread-safety rejects ts_negative.cpp"
ERRLOG="$(mktemp)"
trap 'rm -f "${ERRLOG}"' EXIT
if "${CLANG}" "${FLAGS[@]}" "${TSA_FLAGS[@]}" "${FIXTURES}/ts_negative.cpp" 2>"${ERRLOG}"; then
  echo "thread_safety_check: FAIL — ts_negative.cpp compiled under" >&2
  echo "  -Werror=thread-safety; the annotations are not being enforced." >&2
  exit 1
fi
if ! grep -q 'thread-safety' "${ERRLOG}"; then
  echo "thread_safety_check: FAIL — ts_negative.cpp was rejected, but not" >&2
  echo "  by the thread-safety analysis:" >&2
  cat "${ERRLOG}" >&2
  exit 1
fi
echo "thread_safety_check: PASS — unguarded access rejected:"
grep 'thread-safety' "${ERRLOG}" | head -2 | sed 's/^/  /'
