#!/usr/bin/env bash
# bench_smoke.sh BUILD_DIR [DURATION_MS]
#
# CI smoke gate, two legs:
#
# 1. Churn: the delete/resize workload (the size-class magazine
#    allocator's target traffic).  Fails if any METRICS line reports
#    * resource_exhausted > 0  — churn at this scale must never exhaust
#      the arena budget (cached slices draining back is part of that), or
#    * validation_errors > 0   — the quiesced ChunkWalker audit found a
#      structural problem.
#    Also prints the observed magazine hit rate so perf regressions in the
#    recycling path are visible in the job log.
#
# 2. Zipfian maintenance A/B: the skewed put-heavy scenario run twice —
#    --maint-threads 0 (inline rebalance, the seed's behavior) vs
#    --maint-threads 2 (background pool).  Fails if the background run's
#    put p99 regresses past OAK_BENCH_MAINT_TOLERANCE (default 1.25x) of
#    the inline run's — moving rebalance off the hot path must not make
#    tail latency worse.  The observed pair is written to
#    BUILD_DIR/BENCH_maint.json (the repo's checked-in BENCH_maint.json is
#    a snapshot of this output).
#
# 3. Snapshot-churn A/B (ISSUE 8): long MVCC snapshot scans racing zipfian
#    writers, run twice — --no-snapshot-scans (plain scans, same mix) vs
#    snapshot scans pinning a read version per walk.  Fails if the snapshot
#    run's writer put p99 regresses past OAK_BENCH_SNAP_TOLERANCE (default
#    1.15x) of the baseline's — version chaining must stay off the writer's
#    tail — or if the snapshot leg retired no versions / ran no snapshot
#    scans (the workload didn't exercise MVCC at all).  Written to
#    BUILD_DIR/BENCH_snapshot.json; the checked-in BENCH_snapshot.json is a
#    snapshot of this output.
#
# 4. Durability / recovery (ISSUE 9): `--scenario recovery` ingests the
#    range durable (WAL + mmap arenas on a tmpfs dir), checkpoints, writes
#    a WAL tail, closes, and reopens in-process.  Fails if
#    * the WAL-on put p99 exceeds OAK_BENCH_WAL_TOLERANCE (default 1.25x)
#      of the same-process in-memory baseline,
#    * the cold restart (reopen) is slower than the original durable ingest
#      times OAK_BENCH_RECOVERY_TOLERANCE (default 1.0 — bulk-loading a
#      checkpoint must beat re-ingesting),
#    * recovery replayed nothing, replayed the whole dataset (the
#      checkpoint didn't truncate the WAL), or lost pairs, or
#    * validation_errors > 0.
#    Written to BUILD_DIR/BENCH_recovery.json; the checked-in
#    BENCH_recovery.json is a 1M-pair snapshot of this output.
#
# 5. Relocation / compaction A/B (DESIGN.md §13): `--scenario compaction`
#    runs wave-shaped churn twice over paired maps — relocation off vs
#    background arena evacuation armed — interleaving the latency-sampled
#    stages so host noise cancels within each pair.  Fails if
#    * the armed leg's put p99 exceeds OAK_BENCH_COMPACTION_TOLERANCE
#      (default 1.15x) of the baseline's (median paired ratio),
#    * evacuation moved no slices or retired no arenas (the trigger or the
#      relocator is dead),
#    * the armed leg did not end with fewer arena blocks than the baseline
#      (relocation exists to shrink the footprint), or
#    * validation_errors > 0.
#    Written to BUILD_DIR/BENCH_compaction.json; the checked-in
#    BENCH_compaction.json is a snapshot of this output.
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh BUILD_DIR [DURATION_MS]}
duration_ms=${2:-5000}

bench="$build_dir/bench/synchrobench"
[[ -x "$bench" ]] || { echo "bench_smoke: $bench not built" >&2; exit 2; }

log=$(mktemp)
trap 'rm -f "$log"' EXIT

OAK_BENCH_VALIDATE=1 "$bench" --churn -b OakMap -t "16" -i 50000 \
    -d "$duration_ms" | tee "$log"

metrics=$(grep -c '^METRICS ' "$log") || {
  echo "bench_smoke: no METRICS lines produced" >&2
  exit 1
}

fail=0
while IFS= read -r line; do
  exhausted=$(sed -n 's/.*"resource_exhausted":\([0-9]*\).*/\1/p' <<<"$line")
  verrors=$(sed -n 's/.*"validation_errors":\([0-9]*\).*/\1/p' <<<"$line")
  hitrate=$(sed -n 's/.*"mag_hit_rate":\([0-9.]*\).*/\1/p' <<<"$line")
  if [[ -n "$exhausted" && "$exhausted" != 0 ]]; then
    echo "bench_smoke: FAIL resource_exhausted=$exhausted" >&2
    fail=1
  fi
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL validation_errors=$verrors" >&2
    fail=1
  fi
  echo "bench_smoke: mag_hit_rate=${hitrate:-n/a}"
done < <(grep '^METRICS ' "$log")

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK ($metrics points, ${duration_ms}ms churn)"

# ------------------------------------------------ zipfian maintenance A/B
tolerance=${OAK_BENCH_MAINT_TOLERANCE:-1.25}
zipf_threads=${OAK_BENCH_MAINT_AB_THREADS:-4}
zipf_size=${OAK_BENCH_MAINT_AB_SIZE:-50000}
repeats=${OAK_BENCH_MAINT_AB_REPEATS:-3}

run_zipf() {  # $1 = maint thread count; prints the METRICS line
  OAK_BENCH_VALIDATE=1 "$bench" --scenario zipf -b OakMap \
      -t "$zipf_threads" -i "$zipf_size" -d "$duration_ms" --shards 2 \
      --maint-threads "$1" | grep '^METRICS ' | head -1
}

extract() {  # $1 = METRICS line, $2 = sed pattern
  sed -n "s/.*$2.*/\1/p" <<<"$1"
}

# Latency percentiles come from a power-of-two bucketed histogram, so a
# single run can jump a whole 2x bucket on scheduler noise.  Run each leg
# $repeats times and keep the run with the median put p99.
median_run() {  # $1 = maint thread count; prints the median-p99 METRICS line
  local lines=() p99s=() line p99
  for ((i = 0; i < repeats; ++i)); do
    line=$(run_zipf "$1")
    p99=$(extract "$line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
    [[ -n "$p99" ]] || continue
    lines+=("$line"); p99s+=("$p99")
  done
  [[ ${#lines[@]} -gt 0 ]] || return 1
  local mid
  mid=$(printf '%s\n' "${p99s[@]}" | sort -n | awk -v n=${#p99s[@]} \
        'NR == int((n + 1) / 2) { print; exit }')
  for i in "${!lines[@]}"; do
    if [[ "${p99s[$i]}" == "$mid" ]]; then printf '%s\n' "${lines[$i]}"; return 0; fi
  done
}

echo "bench_smoke: zipf A/B (inline vs background maintenance, $repeats runs/leg)..."
inline_line=$(median_run 0)
bg_line=$(median_run 2)

inline_p99=$(extract "$inline_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
bg_p99=$(extract "$bg_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
inline_kops=$(extract "$inline_line" '"kops":\([0-9.]*\)')
bg_kops=$(extract "$bg_line" '"kops":\([0-9.]*\)')
bg_executed=$(extract "$bg_line" '"maint_executed":\([0-9]*\)')

for line in "$inline_line" "$bg_line"; do
  verrors=$(extract "$line" '"validation_errors":\([0-9]*\)')
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL zipf validation_errors=$verrors" >&2
    fail=1
  fi
done
if [[ -z "$inline_p99" || -z "$bg_p99" ]]; then
  echo "bench_smoke: FAIL could not extract put p99 from zipf METRICS" >&2
  exit 1
fi
if [[ "${bg_executed:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL background run executed no maintenance jobs" >&2
  fail=1
fi
# Gate: background put p99 must stay within tolerance of inline.
if ! awk -v bg="$bg_p99" -v inl="$inline_p99" -v tol="$tolerance" \
      'BEGIN { exit !(bg <= inl * tol) }'; then
  echo "bench_smoke: FAIL put p99 regression with background maintenance:" \
       "inline=${inline_p99}ns background=${bg_p99}ns (tolerance ${tolerance}x)" >&2
  fail=1
fi

ab_json="$build_dir/BENCH_maint.json"
cat > "$ab_json" <<JSON
{
  "bench": "synchrobench --scenario zipf -b OakMap -t $zipf_threads -i $zipf_size -d $duration_ms --shards 2",
  "gate": "median-of-$repeats background put p99 <= inline put p99 * $tolerance",
  "inline": {"maint_threads": 0, "put_p99_ns": $inline_p99, "kops": ${inline_kops:-0}},
  "background": {"maint_threads": 2, "put_p99_ns": $bg_p99, "kops": ${bg_kops:-0}, "maint_executed": ${bg_executed:-0}}
}
JSON
echo "bench_smoke: zipf put p99 inline=${inline_p99}ns background=${bg_p99}ns" \
     "(kops ${inline_kops:-?} -> ${bg_kops:-?}); wrote $ab_json"

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK (zipf A/B gate passed)"

# ------------------------------------------------ snapshot-churn A/B
snap_tolerance=${OAK_BENCH_SNAP_TOLERANCE:-1.15}

run_snap() {  # $1 = extra flags ("" or --no-snapshot-scans); prints METRICS
  # shellcheck disable=SC2086  # $1 is deliberately word-split
  OAK_BENCH_VALIDATE=1 "$bench" --scenario snapshot-churn -b OakMap \
      -t "$zipf_threads" -i "$zipf_size" -d "$duration_ms" --shards 2 \
      --maint-threads 2 $1 | grep '^METRICS ' | head -1
}

median_snap_run() {  # $1 = extra flags; prints the median-put-p99 METRICS line
  local lines=() p99s=() line p99
  for ((i = 0; i < repeats; ++i)); do
    line=$(run_snap "$1")
    p99=$(extract "$line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
    [[ -n "$p99" ]] || continue
    lines+=("$line"); p99s+=("$p99")
  done
  [[ ${#lines[@]} -gt 0 ]] || return 1
  local mid
  mid=$(printf '%s\n' "${p99s[@]}" | sort -n | awk -v n=${#p99s[@]} \
        'NR == int((n + 1) / 2) { print; exit }')
  for i in "${!lines[@]}"; do
    if [[ "${p99s[$i]}" == "$mid" ]]; then printf '%s\n' "${lines[$i]}"; return 0; fi
  done
}

echo "bench_smoke: snapshot A/B (plain vs pinned scans, $repeats runs/leg)..."
base_line=$(median_snap_run "--no-snapshot-scans")
snap_line=$(median_snap_run "")

base_p99=$(extract "$base_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
snap_p99=$(extract "$snap_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
base_kops=$(extract "$base_line" '"kops":\([0-9.]*\)')
snap_kops=$(extract "$snap_line" '"kops":\([0-9.]*\)')
snap_scans=$(extract "$snap_line" '"snap_scans":\([0-9]*\)')
snap_scan_p99=$(extract "$snap_line" '"snap_scan_p99_ns":\([0-9]*\)')
snap_retired=$(extract "$snap_line" '"versions_retired":\([0-9]*\)')

for line in "$base_line" "$snap_line"; do
  verrors=$(extract "$line" '"validation_errors":\([0-9]*\)')
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL snapshot-churn validation_errors=$verrors" >&2
    fail=1
  fi
done
if [[ -z "$base_p99" || -z "$snap_p99" ]]; then
  echo "bench_smoke: FAIL could not extract put p99 from snapshot METRICS" >&2
  exit 1
fi
# The snapshot leg must actually exercise MVCC: pinned scans ran, and the
# GC retired superseded versions once their pins released.
if [[ "${snap_scans:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL snapshot run performed no snapshot scans" >&2
  fail=1
fi
if [[ "${snap_retired:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL snapshot run retired no versions" >&2
  fail=1
fi
# Gate (ISSUE 8): writer put p99 with snapshot scans must stay within
# tolerance of the same mix without pinning.
if ! awk -v sn="$snap_p99" -v base="$base_p99" -v tol="$snap_tolerance" \
      'BEGIN { exit !(sn <= base * tol) }'; then
  echo "bench_smoke: FAIL put p99 regression with snapshot scans:" \
       "baseline=${base_p99}ns snapshot=${snap_p99}ns (tolerance ${snap_tolerance}x)" >&2
  fail=1
fi

snap_json="$build_dir/BENCH_snapshot.json"
cat > "$snap_json" <<JSON
{
  "bench": "synchrobench --scenario snapshot-churn -b OakMap -t $zipf_threads -i $zipf_size -d $duration_ms --shards 2 --maint-threads 2",
  "gate": "median-of-$repeats snapshot put p99 <= baseline put p99 * $snap_tolerance",
  "baseline": {"snapshot_scans": false, "put_p99_ns": $base_p99, "kops": ${base_kops:-0}},
  "snapshot": {"snapshot_scans": true, "put_p99_ns": $snap_p99, "kops": ${snap_kops:-0}, "snap_scans": ${snap_scans:-0}, "snap_scan_p99_ns": ${snap_scan_p99:-0}, "versions_retired": ${snap_retired:-0}}
}
JSON
echo "bench_smoke: snapshot put p99 baseline=${base_p99}ns pinned=${snap_p99}ns" \
     "(kops ${base_kops:-?} -> ${snap_kops:-?}, scans ${snap_scans:-0});" \
     "wrote $snap_json"

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK (snapshot A/B gate passed)"

# ------------------------------------------------ durability / recovery
wal_tolerance=${OAK_BENCH_WAL_TOLERANCE:-1.25}
rec_tolerance=${OAK_BENCH_RECOVERY_TOLERANCE:-1.0}
rec_size=${OAK_BENCH_RECOVERY_SIZE:-200000}
rec_value=${OAK_BENCH_RECOVERY_VALUE_BYTES:-256}
rec_threads=${OAK_BENCH_RECOVERY_THREADS:-2}
rec_dir=${OAK_BENCH_RECOVERY_DIR:-}
if [[ -z "$rec_dir" ]]; then
  # mmap page-fault cost on a disk-backed filesystem would dominate the put
  # latencies; the gate measures Oak, not the host's block layer.
  if [[ -d /dev/shm && -w /dev/shm ]]; then
    rec_dir="/dev/shm/oak-bench-recovery-$$"
  else
    rec_dir="$build_dir/oak-bench-recovery"
  fi
fi

run_recovery() {  # prints the RECOVERY line; storage dir is fresh per run
  rm -rf "$rec_dir"
  OAK_BENCH_VALIDATE=1 "$bench" --scenario recovery -t "$rec_threads" \
      -i "$rec_size" -v "$rec_value" --shards 2 --maint-threads 2 \
      --storage-dir "$rec_dir" | grep '^RECOVERY ' | head -1
  rm -rf "$rec_dir"
}

# Like the other A/B legs, a single run's p99 ratio can double on host
# noise alone; keep the run with the median WAL-vs-baseline put ratio.
median_recovery_run() {  # prints the median-ratio RECOVERY line
  local lines=() ratios=() line ratio
  for ((i = 0; i < repeats; ++i)); do
    line=$(run_recovery)
    ratio=$(extract "$line" '"put_p99_ratio":\([0-9.]*\)')
    [[ -n "$ratio" ]] || continue
    lines+=("$line"); ratios+=("$ratio")
  done
  [[ ${#lines[@]} -gt 0 ]] || return 1
  local mid
  mid=$(printf '%s\n' "${ratios[@]}" | sort -g | awk -v n=${#ratios[@]} \
        'NR == int((n + 1) / 2) { print; exit }')
  for i in "${!lines[@]}"; do
    if [[ "${ratios[$i]}" == "$mid" ]]; then printf '%s\n' "${lines[$i]}"; return 0; fi
  done
}

echo "bench_smoke: recovery leg ($rec_size pairs, $repeats runs, dir $rec_dir)..."
rec_line=$(median_recovery_run)

if [[ -z "$rec_line" ]]; then
  echo "bench_smoke: FAIL recovery run produced no RECOVERY line" >&2
  exit 1
fi

rec_pairs=$(extract "$rec_line" '"pairs":\([0-9]*\)')
rec_replayed=$(extract "$rec_line" '"replayed_records":\([0-9]*\)')
rec_final=$(extract "$rec_line" '"final_size":\([0-9]*\)')
base_put_p99=$(extract "$rec_line" '"base_put_p99_ns":\([0-9]*\)')
wal_put_p99=$(extract "$rec_line" '"wal_put_p99_ns":\([0-9]*\)')
rec_ingest_ms=$(extract "$rec_line" '"wal_ingest_ms":\([0-9]*\)')
rec_reopen_ms=$(extract "$rec_line" '"reopen_ms":\([0-9]*\)')
rec_recovery_ms=$(extract "$rec_line" '"recovery_ms":\([0-9]*\)')
rec_checkpoint_ms=$(extract "$rec_line" '"checkpoint_ms":\([0-9]*\)')
rec_verrors=$(extract "$rec_line" '"validation_errors":\([0-9]*\)')

if [[ -z "$rec_pairs" || -z "$base_put_p99" || -z "$wal_put_p99" ]]; then
  echo "bench_smoke: FAIL could not parse RECOVERY line" >&2
  exit 1
fi
if [[ "${rec_verrors:-0}" != 0 ]]; then
  echo "bench_smoke: FAIL recovery validation_errors=$rec_verrors" >&2
  fail=1
fi
# Recovery must replay a WAL tail — but only the tail: a replay count of 0
# means the WAL hooks are dead, a count == pairs means the checkpoint never
# truncated the log.
if [[ "${rec_replayed:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL recovery replayed no WAL records" >&2
  fail=1
fi
if (( ${rec_replayed:-0} >= ${rec_pairs:-0} )); then
  echo "bench_smoke: FAIL recovery replayed the whole dataset" \
       "(replayed=$rec_replayed pairs=$rec_pairs — checkpoint not used)" >&2
  fail=1
fi
if [[ "$rec_final" != "$rec_pairs" ]]; then
  echo "bench_smoke: FAIL recovered size $rec_final != ingested $rec_pairs" >&2
  fail=1
fi
# Gate: WAL on the put path must stay within tolerance of in-memory puts.
if ! awk -v w="$wal_put_p99" -v b="$base_put_p99" -v tol="$wal_tolerance" \
      'BEGIN { exit !(w <= b * tol) }'; then
  echo "bench_smoke: FAIL put p99 regression with WAL:" \
       "in-memory=${base_put_p99}ns wal=${wal_put_p99}ns (tolerance ${wal_tolerance}x)" >&2
  fail=1
fi
# Gate: the cold restart (checkpoint bulk load + tail replay) must beat
# re-ingesting the same data.
if ! awk -v r="$rec_reopen_ms" -v i="$rec_ingest_ms" -v tol="$rec_tolerance" \
      'BEGIN { exit !(r <= i * tol) }'; then
  echo "bench_smoke: FAIL cold restart too slow:" \
       "reopen=${rec_reopen_ms}ms ingest=${rec_ingest_ms}ms (tolerance ${rec_tolerance}x)" >&2
  fail=1
fi

rec_json="$build_dir/BENCH_recovery.json"
cat > "$rec_json" <<JSON
{
  "bench": "synchrobench --scenario recovery -t $rec_threads -i $rec_size -v $rec_value --shards 2 --maint-threads 2",
  "gates": [
    "median-of-$repeats wal put p99 <= in-memory put p99 * $wal_tolerance",
    "reopen_ms <= durable ingest_ms * $rec_tolerance",
    "0 < replayed_records < pairs",
    "final_size == pairs"
  ],
  "result": ${rec_line#RECOVERY }
}
JSON
echo "bench_smoke: recovery put p99 in-memory=${base_put_p99}ns wal=${wal_put_p99}ns;" \
     "reopen ${rec_reopen_ms}ms (recovery ${rec_recovery_ms}ms, checkpoint ${rec_checkpoint_ms}ms," \
     "replayed ${rec_replayed}/${rec_pairs}); wrote $rec_json"

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK (recovery gate passed)"

# ------------------------------------------------ relocation / compaction A/B
comp_tolerance=${OAK_BENCH_COMPACTION_TOLERANCE:-1.15}
# The sampled stage needs enough puts for a meaningful exact p99; the
# churn leg's pair count (5000 at smoke scale) gives ~2k samples per rep,
# too coarse, so the compaction leg runs its own larger range.
comp_size=${OAK_BENCH_COMPACTION_SIZE:-20000}
comp_threads=${OAK_BENCH_COMPACTION_THREADS:-4}

run_compaction() {  # prints the COMPACTION line
  OAK_BENCH_VALIDATE=1 "$bench" --scenario compaction -t "$comp_threads" \
      -i "$comp_size" --shards 2 --maint-threads 2 | grep '^COMPACTION ' | head -1
}

# The scenario already medians interleaved stage reps internally; the
# script-level median-of-$repeats (keyed on the paired p99 ratio) absorbs
# whole-run regime shifts on a busy host.
median_compaction_run() {  # prints the median-ratio COMPACTION line
  local lines=() ratios=() line ratio
  for ((i = 0; i < repeats; ++i)); do
    line=$(run_compaction)
    ratio=$(extract "$line" '"put_p99_ratio":\([0-9.]*\)')
    [[ -n "$ratio" ]] || continue
    lines+=("$line"); ratios+=("$ratio")
  done
  [[ ${#lines[@]} -gt 0 ]] || return 1
  local mid
  mid=$(printf '%s\n' "${ratios[@]}" | sort -g | awk -v n=${#ratios[@]} \
        'NR == int((n + 1) / 2) { print; exit }')
  for i in "${!lines[@]}"; do
    if [[ "${ratios[$i]}" == "$mid" ]]; then printf '%s\n' "${lines[$i]}"; return 0; fi
  done
}

echo "bench_smoke: compaction A/B ($comp_size pairs, $repeats runs)..."
comp_line=$(median_compaction_run)

if [[ -z "$comp_line" ]]; then
  echo "bench_smoke: FAIL compaction run produced no COMPACTION line" >&2
  exit 1
fi

comp_ratio=$(extract "$comp_line" '"put_p99_ratio":\([0-9.]*\)')
comp_base_p99=$(extract "$comp_line" '"base_put_p99_ns":\([0-9]*\)')
comp_p99=$(extract "$comp_line" '"compact_put_p99_ns":\([0-9]*\)')
comp_base_blocks=$(extract "$comp_line" '"base_arena_blocks":\([0-9]*\)')
comp_blocks=$(extract "$comp_line" '"arena_blocks_after":\([0-9]*\)')
comp_evacuated=$(extract "$comp_line" '"arenas_evacuated":\([0-9]*\)')
comp_slices=$(extract "$comp_line" '"slices_relocated":\([0-9]*\)')
comp_bytes=$(extract "$comp_line" '"bytes_relocated":\([0-9]*\)')
comp_verrors=$(extract "$comp_line" '"validation_errors":\([0-9]*\)')

if [[ -z "$comp_ratio" || -z "$comp_base_blocks" || -z "$comp_blocks" ]]; then
  echo "bench_smoke: FAIL could not parse COMPACTION line" >&2
  exit 1
fi
if [[ "${comp_verrors:-0}" != 0 ]]; then
  echo "bench_smoke: FAIL compaction validation_errors=$comp_verrors" >&2
  fail=1
fi
# Evacuation must actually run: slices moved, whole arenas retired.
if [[ "${comp_slices:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL compaction relocated no slices" >&2
  fail=1
fi
if [[ "${comp_evacuated:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL compaction evacuated no arenas" >&2
  fail=1
fi
# Gate: the armed leg must end smaller — reclaiming arenas is the point.
if (( ${comp_blocks:-0} >= ${comp_base_blocks:-0} )); then
  echo "bench_smoke: FAIL compaction did not shrink the arena footprint:" \
       "baseline=$comp_base_blocks blocks, compacted=$comp_blocks" >&2
  fail=1
fi
# Gate: armed put p99 must stay within tolerance of the baseline (median
# of the per-rep paired ratios, so both sides saw the same host weather).
if ! awk -v r="$comp_ratio" -v tol="$comp_tolerance" \
      'BEGIN { exit !(r <= tol) }'; then
  echo "bench_smoke: FAIL put p99 regression with evacuation armed:" \
       "baseline=${comp_base_p99}ns armed=${comp_p99}ns ratio=$comp_ratio" \
       "(tolerance ${comp_tolerance}x)" >&2
  fail=1
fi

comp_json="$build_dir/BENCH_compaction.json"
cat > "$comp_json" <<JSON
{
  "bench": "synchrobench --scenario compaction -t $comp_threads -i $comp_size --shards 2 --maint-threads 2",
  "gates": [
    "median-of-$repeats paired put p99 ratio <= $comp_tolerance",
    "slices_relocated > 0 and arenas_evacuated > 0",
    "arena_blocks_after < base_arena_blocks",
    "validation_errors == 0"
  ],
  "result": ${comp_line#COMPACTION }
}
JSON
echo "bench_smoke: compaction put p99 baseline=${comp_base_p99}ns armed=${comp_p99}ns" \
     "(ratio $comp_ratio); arenas $comp_base_blocks -> $comp_blocks," \
     "${comp_slices} slices / ${comp_bytes} bytes moved; wrote $comp_json"

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK (compaction A/B gate passed)"
