#!/usr/bin/env bash
# bench_smoke.sh BUILD_DIR [DURATION_MS]
#
# CI smoke gate for the delete/resize churn workload (the size-class
# magazine allocator's target traffic).  Runs synchrobench's churn
# scenario on the Oak map for ~5s with post-stage structural validation
# enabled, then fails if any METRICS line reports
#   * resource_exhausted > 0  — churn at this scale must never exhaust
#     the arena budget (cached slices draining back is part of that), or
#   * validation_errors > 0   — the quiesced ChunkWalker audit found a
#     structural problem.
# Also prints the observed magazine hit rate so perf regressions in the
# recycling path are visible in the job log.
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh BUILD_DIR [DURATION_MS]}
duration_ms=${2:-5000}

bench="$build_dir/bench/synchrobench"
[[ -x "$bench" ]] || { echo "bench_smoke: $bench not built" >&2; exit 2; }

log=$(mktemp)
trap 'rm -f "$log"' EXIT

OAK_BENCH_VALIDATE=1 "$bench" --churn -b OakMap -t "16" -i 50000 \
    -d "$duration_ms" | tee "$log"

metrics=$(grep -c '^METRICS ' "$log") || {
  echo "bench_smoke: no METRICS lines produced" >&2
  exit 1
}

fail=0
while IFS= read -r line; do
  exhausted=$(sed -n 's/.*"resource_exhausted":\([0-9]*\).*/\1/p' <<<"$line")
  verrors=$(sed -n 's/.*"validation_errors":\([0-9]*\).*/\1/p' <<<"$line")
  hitrate=$(sed -n 's/.*"mag_hit_rate":\([0-9.]*\).*/\1/p' <<<"$line")
  if [[ -n "$exhausted" && "$exhausted" != 0 ]]; then
    echo "bench_smoke: FAIL resource_exhausted=$exhausted" >&2
    fail=1
  fi
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL validation_errors=$verrors" >&2
    fail=1
  fi
  echo "bench_smoke: mag_hit_rate=${hitrate:-n/a}"
done < <(grep '^METRICS ' "$log")

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK ($metrics points, ${duration_ms}ms churn)"
