#!/usr/bin/env bash
# bench_smoke.sh BUILD_DIR [DURATION_MS]
#
# CI smoke gate, two legs:
#
# 1. Churn: the delete/resize workload (the size-class magazine
#    allocator's target traffic).  Fails if any METRICS line reports
#    * resource_exhausted > 0  — churn at this scale must never exhaust
#      the arena budget (cached slices draining back is part of that), or
#    * validation_errors > 0   — the quiesced ChunkWalker audit found a
#      structural problem.
#    Also prints the observed magazine hit rate so perf regressions in the
#    recycling path are visible in the job log.
#
# 2. Zipfian maintenance A/B: the skewed put-heavy scenario run twice —
#    --maint-threads 0 (inline rebalance, the seed's behavior) vs
#    --maint-threads 2 (background pool).  Fails if the background run's
#    put p99 regresses past OAK_BENCH_MAINT_TOLERANCE (default 1.25x) of
#    the inline run's — moving rebalance off the hot path must not make
#    tail latency worse.  The observed pair is written to
#    BUILD_DIR/BENCH_maint.json (the repo's checked-in BENCH_maint.json is
#    a snapshot of this output).
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh BUILD_DIR [DURATION_MS]}
duration_ms=${2:-5000}

bench="$build_dir/bench/synchrobench"
[[ -x "$bench" ]] || { echo "bench_smoke: $bench not built" >&2; exit 2; }

log=$(mktemp)
trap 'rm -f "$log"' EXIT

OAK_BENCH_VALIDATE=1 "$bench" --churn -b OakMap -t "16" -i 50000 \
    -d "$duration_ms" | tee "$log"

metrics=$(grep -c '^METRICS ' "$log") || {
  echo "bench_smoke: no METRICS lines produced" >&2
  exit 1
}

fail=0
while IFS= read -r line; do
  exhausted=$(sed -n 's/.*"resource_exhausted":\([0-9]*\).*/\1/p' <<<"$line")
  verrors=$(sed -n 's/.*"validation_errors":\([0-9]*\).*/\1/p' <<<"$line")
  hitrate=$(sed -n 's/.*"mag_hit_rate":\([0-9.]*\).*/\1/p' <<<"$line")
  if [[ -n "$exhausted" && "$exhausted" != 0 ]]; then
    echo "bench_smoke: FAIL resource_exhausted=$exhausted" >&2
    fail=1
  fi
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL validation_errors=$verrors" >&2
    fail=1
  fi
  echo "bench_smoke: mag_hit_rate=${hitrate:-n/a}"
done < <(grep '^METRICS ' "$log")

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK ($metrics points, ${duration_ms}ms churn)"

# ------------------------------------------------ zipfian maintenance A/B
tolerance=${OAK_BENCH_MAINT_TOLERANCE:-1.25}
zipf_threads=${OAK_BENCH_MAINT_AB_THREADS:-4}
zipf_size=${OAK_BENCH_MAINT_AB_SIZE:-50000}
repeats=${OAK_BENCH_MAINT_AB_REPEATS:-3}

run_zipf() {  # $1 = maint thread count; prints the METRICS line
  OAK_BENCH_VALIDATE=1 "$bench" --scenario zipf -b OakMap \
      -t "$zipf_threads" -i "$zipf_size" -d "$duration_ms" --shards 2 \
      --maint-threads "$1" | grep '^METRICS ' | head -1
}

extract() {  # $1 = METRICS line, $2 = sed pattern
  sed -n "s/.*$2.*/\1/p" <<<"$1"
}

# Latency percentiles come from a power-of-two bucketed histogram, so a
# single run can jump a whole 2x bucket on scheduler noise.  Run each leg
# $repeats times and keep the run with the median put p99.
median_run() {  # $1 = maint thread count; prints the median-p99 METRICS line
  local lines=() p99s=() line p99
  for ((i = 0; i < repeats; ++i)); do
    line=$(run_zipf "$1")
    p99=$(extract "$line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
    [[ -n "$p99" ]] || continue
    lines+=("$line"); p99s+=("$p99")
  done
  [[ ${#lines[@]} -gt 0 ]] || return 1
  local mid
  mid=$(printf '%s\n' "${p99s[@]}" | sort -n | awk -v n=${#p99s[@]} \
        'NR == int((n + 1) / 2) { print; exit }')
  for i in "${!lines[@]}"; do
    if [[ "${p99s[$i]}" == "$mid" ]]; then printf '%s\n' "${lines[$i]}"; return 0; fi
  done
}

echo "bench_smoke: zipf A/B (inline vs background maintenance, $repeats runs/leg)..."
inline_line=$(median_run 0)
bg_line=$(median_run 2)

inline_p99=$(extract "$inline_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
bg_p99=$(extract "$bg_line" '"put":{[^}]*"p99_ns":\([0-9]*\)')
inline_kops=$(extract "$inline_line" '"kops":\([0-9.]*\)')
bg_kops=$(extract "$bg_line" '"kops":\([0-9.]*\)')
bg_executed=$(extract "$bg_line" '"maint_executed":\([0-9]*\)')

for line in "$inline_line" "$bg_line"; do
  verrors=$(extract "$line" '"validation_errors":\([0-9]*\)')
  if [[ -n "$verrors" && "$verrors" != 0 ]]; then
    echo "bench_smoke: FAIL zipf validation_errors=$verrors" >&2
    fail=1
  fi
done
if [[ -z "$inline_p99" || -z "$bg_p99" ]]; then
  echo "bench_smoke: FAIL could not extract put p99 from zipf METRICS" >&2
  exit 1
fi
if [[ "${bg_executed:-0}" == 0 ]]; then
  echo "bench_smoke: FAIL background run executed no maintenance jobs" >&2
  fail=1
fi
# Gate: background put p99 must stay within tolerance of inline.
if ! awk -v bg="$bg_p99" -v inl="$inline_p99" -v tol="$tolerance" \
      'BEGIN { exit !(bg <= inl * tol) }'; then
  echo "bench_smoke: FAIL put p99 regression with background maintenance:" \
       "inline=${inline_p99}ns background=${bg_p99}ns (tolerance ${tolerance}x)" >&2
  fail=1
fi

ab_json="$build_dir/BENCH_maint.json"
cat > "$ab_json" <<JSON
{
  "bench": "synchrobench --scenario zipf -b OakMap -t $zipf_threads -i $zipf_size -d $duration_ms --shards 2",
  "gate": "median-of-$repeats background put p99 <= inline put p99 * $tolerance",
  "inline": {"maint_threads": 0, "put_p99_ns": $inline_p99, "kops": ${inline_kops:-0}},
  "background": {"maint_threads": 2, "put_p99_ns": $bg_p99, "kops": ${bg_kops:-0}, "maint_executed": ${bg_executed:-0}}
}
JSON
echo "bench_smoke: zipf put p99 inline=${inline_p99}ns background=${bg_p99}ns" \
     "(kops ${inline_kops:-?} -> ${bg_kops:-?}); wrote $ab_json"

if [[ "$fail" != 0 ]]; then
  exit 1
fi
echo "bench_smoke: OK (zipf A/B gate passed)"
