#!/usr/bin/env python3
"""oaklint — Oak-specific static checks the generic analyses can't express.

Clang's -Wthread-safety proves the lock/field discipline (DESIGN.md §10a);
oaklint enforces the *protocol* rules layered on top of it:

  R1  no zero-copy view or translated slice pointer stored to a member or
      returned while inside an EBR guard scope (the pointer outlives the pin)
  R2  no std::getenv outside src/common/env.hpp (the single env gateway)
  R3  no allocation (new / malloc / container growth) while holding a
      SpinLock — spin waiters burn CPU for the whole malloc
  R4  no packed-ref {block, offset} pointer arithmetic outside src/mem/
      (dereference goes through MemoryManager::translate)
  R5  no blocking call (mutex acquire, condition wait, sleep, join) inside
      an EBR guard — a blocked pinned thread stalls reclamation everywhere
  R6  no raw MVCC version-stamp manipulation outside src/oak/ + src/mem/ —
      stamps are opaque tickets (Snapshot::version() -> snapshotAt());
      touching writeVersion/dataVersion fields or doing +/- arithmetic on a
      stamp forges a read version the GC never promised to keep alive
  R7  no direct {block, offset} ref materialization (Ref::make) outside
      src/mem/ — slices relocate under the evacuator, so a hand-built ref
      bypasses the allocator's liveness accounting and can name bytes that
      have since moved (detail::headerRef is the one blessed helper:
      pinned-domain value headers never relocate)

Engines:
  * libclang — AST-accurate; used when python3-clang is importable
    (the CI `oaklint` job).  Parse args come from compile_commands.json
    when present (every preset exports it), else conservative defaults.
  * textual  — dependency-free line scanner with comment/string stripping
    and brace-scope tracking; the always-available fallback that makes the
    ctest self-test meaningful on machines without libclang.

Suppressions: `// oaklint: allow(RN, reason)` on the offending line or the
line above it.  Fixtures under tests/lint_fixtures/ declare intent with
`// oaklint-expect: RN`; `--self-test` asserts every fixture is flagged
with exactly its declared rule and the real tree is clean.

Exit status: 0 clean / self-test pass, 1 findings / self-test failure,
2 usage or engine-unavailable error.
"""

import argparse
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = {
    "R1": "zero-copy view escapes its EBR guard scope",
    "R2": "std::getenv outside common/env.hpp",
    "R3": "allocation while holding a SpinLock",
    "R4": "packed-ref arithmetic outside MemoryManager",
    "R5": "blocking call inside an EBR guard",
    "R6": "raw version-stamp manipulation outside the MVCC layer",
    "R7": "packed-ref materialization outside the mem layer",
}

DEFAULT_ROOTS = ["src", "tests", "bench"]
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
ENV_GATEWAY = os.path.join("src", "common", "env.hpp")
# The allocator/memory layer *is* the implementation below MemoryManager:
# R1/R4 do not apply to it (it manufactures the refs and the pointers).
MEM_LAYER = os.path.join("src", "mem") + os.sep
# The map core owns the version clock and the per-value chains: R6 does not
# apply to src/oak/ (or src/mem/, which stores the stamped headers).
OAK_LAYER = os.path.join("src", "oak") + os.sep

ALLOW_RE = re.compile(r"oaklint:\s*allow\((R[1-7])\b")
EXPECT_RE = re.compile(r"oaklint-expect:\s*(R[1-7])\b")

SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self):
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {RULES[self.rule]} — {self.detail}"


# --------------------------------------------------------------- files --

def collect_files(paths, include_fixtures=False):
    out = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO, p)
        if os.path.isfile(ap):
            out.append(ap)
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = [d for d in dirnames if d not in ("CMakeFiles", ".git")]
            for f in sorted(filenames):
                full = os.path.join(dirpath, f)
                rel = os.path.relpath(full, REPO)
                if not f.endswith(SOURCE_EXTS):
                    continue
                if not include_fixtures and rel.startswith(FIXTURE_DIR):
                    continue
                out.append(full)
    return out


def read_lines(path):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read().splitlines()


def allowed_rules(lines, lineno):
    """Suppressions on the finding's line or the line(s) directly above it
    (a multi-line allow comment suppresses for the line after its end)."""
    rules = set()
    for ln in (lineno, lineno - 1, lineno - 2):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m:
                rules.add(m.group(1))
    return rules


def is_mem_layer(path):
    return os.path.relpath(path, REPO).startswith(MEM_LAYER)


def is_env_gateway(path):
    return os.path.relpath(path, REPO) == ENV_GATEWAY


def is_version_layer(path):
    rel = os.path.relpath(path, REPO)
    return rel.startswith(MEM_LAYER) or rel.startswith(OAK_LAYER)


ASSERTION_RE = re.compile(r"\b(?:EXPECT_|ASSERT_)[A-Z]+\w*\s*\(")


def line_is_assertion(lines, lineno):
    """Offset arithmetic inside a gtest assertion compares integers — it
    never manufactures a pointer, so R4 does not apply."""
    return 1 <= lineno <= len(lines) and bool(ASSERTION_RE.search(lines[lineno - 1]))


# ------------------------------------------------------ textual engine --

# Local scoped-guard declarations (must have an initializer — a plain
# `Ebr::Guard guard_;` member declaration is not a lexical critical section).
SPIN_DECL_RE = re.compile(r"\b(?:SpinGuard\s+\w+\s*[({]|lock_guard<\s*(?:oak::)?SpinLock\s*>\s*\w+\s*[({])")
EBR_DECL_RE = re.compile(r"\bEbr::Guard\s+\w+\s*[({]")

ALLOC_RE = re.compile(
    r"(?:\bnew\b(?!\s*\()|\bnew\s*\(|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"(?:\.|->)(?:push_back|emplace_back|emplace|insert|resize|reserve|append)\s*\(|"
    r"\bmake_unique<|\bmake_shared<)"
)
BLOCKING_RE = re.compile(
    r"(?:\bMutexLock\b|\bWriterLock\b|\bReaderLock\b|std::unique_lock|std::lock_guard|"
    r"std::scoped_lock|(?:\.|->)lock\s*\(\s*\)|(?:\.|->)wait(?:_for|_until)?\s*\(|"
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|(?:\.|->)join\s*\(\s*\))"
)
GETENV_RE = re.compile(r"\bgetenv\s*\(")
VIEW_STORE_RE = re.compile(r"(?:this->)?\w+_\s*=\s*[^=].*(?:(?:\.|->)translate\s*\(|\bOakRBuffer\b|\bValueRef\b)")
VIEW_RETURN_RE = re.compile(r"\breturn\b.*(?:\.|->)translate\s*\(")
REF_ARITH_RE = re.compile(
    r"(?:(?:\.|->)offset\s*\(\s*\)\s*[+\-]|[+\-]\s*\w+(?:\.|->)offset\s*\(\s*\)|"
    r"reinterpret_cast<[^>]*>\s*\([^;]*(?:\.|->)offset\s*\(\s*\))"
)
# R6: the raw stamp fields are an implementation detail of value.hpp; any
# member access to them outside the MVCC layer is a protocol break.
VERSION_FIELD_RE = re.compile(r"(?:\.|->)\s*(?:writeVersion|dataVersion)\b")
# R6: +/- (or bit-twiddling) on an opaque stamp forges a version.  Covers
# `snap.version() + 1`, `1 + s.version()`, and direct snapshotVersion math.
VERSION_ARITH_RE = re.compile(
    r"(?:(?:\.|->)version\s*\(\s*\)\s*[+\-^&|]|[+\-]\s*\w*(?:\.|->)version\s*\(\s*\)|"
    r"(?:\.|->)?snapshotVersion\s*(?:[+\-^&|]|[+\-^&|]?=\s*[^=]))"
)
# R7: Ref::make (but not VRef::make — the value layer owns VRef) forges a
# {block, offset} the allocator never handed out.
REF_MAKE_RE = re.compile(r"(?<!V)\bRef::make\s*\(")


def strip_code(line, in_block_comment):
    """Removes string/char literals and comments; returns (code, in_block)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if in_block_comment:
            j = line.find("*/", i)
            if j < 0:
                return "".join(out), True
            i = j + 2
            in_block_comment = False
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def textual_scan_file(path):
    lines = read_lines(path)
    findings = []
    depth = 0
    in_block = False
    guards = []  # (kind, depth-at-declaration)
    mem_layer = is_mem_layer(path)
    env_gateway = is_env_gateway(path)
    version_layer = is_version_layer(path)

    def active(kind):
        return any(g[0] == kind for g in guards)

    for lineno, rawline in enumerate(lines, 1):
        code, in_block = strip_code(rawline, in_block)
        if not code.strip():
            continue
        allowed = None  # computed lazily

        def flag(rule, detail):
            nonlocal allowed
            if allowed is None:
                allowed = allowed_rules(lines, lineno)
            if rule not in allowed:
                findings.append(Finding(path, lineno, rule, detail))

        spin_decl = SPIN_DECL_RE.search(code)
        ebr_decl = EBR_DECL_RE.search(code)

        if not env_gateway and GETENV_RE.search(code):
            flag("R2", "route environment reads through oak::env")
        if not mem_layer and REF_ARITH_RE.search(code) and \
                not ASSERTION_RE.search(code):
            flag("R4", "dereference refs via MemoryManager::translate")
        if not mem_layer and REF_MAKE_RE.search(code):
            flag("R7", "only the allocator mints refs — use the slice refs it"
                       " returned (or detail::headerRef for value headers)")
        if not version_layer:
            if VERSION_FIELD_RE.search(code):
                flag("R6", "raw writeVersion/dataVersion access — stamps are "
                           "owned by value.hpp")
            elif VERSION_ARITH_RE.search(code) and \
                    not ASSERTION_RE.search(code):
                flag("R6", "version stamps are opaque — pass Snapshot::version()"
                           " to snapshotAt() unmodified")
        if active("spin"):
            m = ALLOC_RE.search(code)
            if m:
                flag("R3", f"'{m.group(0).strip()}' inside a SpinLock window")
        if active("ebr"):
            m = BLOCKING_RE.search(code)
            # The guard-declaration line itself never blocks; and a nested
            # guard decl is not a blocking call.
            if m and not (spin_decl and m.start() >= spin_decl.start()):
                flag("R5", f"'{m.group(0).strip()}' while pinning an epoch")
            if not mem_layer:
                if VIEW_STORE_RE.search(code):
                    flag("R1", "slice view stored to a member outlives the guard")
                elif VIEW_RETURN_RE.search(code):
                    flag("R1", "raw translated pointer returned past the guard")

        # Scope bookkeeping: a guard declared at depth d dies when depth
        # drops below d (its enclosing block closed).
        if spin_decl:
            guards.append(("spin", depth))
        if ebr_decl:
            guards.append(("ebr", depth))
        depth += code.count("{") - code.count("}")
        guards = [g for g in guards if g[1] <= depth]
    return findings


# ----------------------------------------------------- libclang engine --

LIBCLANG_ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "push_back", "emplace_back", "emplace",
    "insert", "resize", "reserve", "append", "make_unique", "make_shared",
}
LIBCLANG_BLOCKING_CALLS = {
    "lock", "wait", "wait_for", "wait_until", "sleep_for", "sleep_until", "join",
}
LIBCLANG_BLOCKING_TYPES = (
    "MutexLock", "WriterLock", "ReaderLock", "unique_lock", "lock_guard",
    "scoped_lock",
)


def load_compile_args(build_dir):
    db = {}
    if not build_dir:
        return db
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return db
    with open(path, "r", encoding="utf-8") as fh:
        for entry in json.load(fh):
            args = entry.get("arguments")
            if args is None:
                args = entry.get("command", "").split()
            # Drop the compiler, the -c/-o pair and the source file itself.
            cleaned = []
            skip = False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-c", "-o"):
                    skip = a == "-o"
                    continue
                if a == entry.get("file") or a.endswith((".cpp", ".cc", ".cxx")):
                    continue
                cleaned.append(a)
            db[os.path.abspath(os.path.join(entry["directory"], entry["file"]))] = cleaned
    return db


def libclang_available():
    try:
        import clang.cindex as ci  # noqa: F401
        ci.Index.create()
        return True
    except Exception:
        return False


def libclang_scan_file_scoped(path, args_db):
    """AST scan with natural C++ scoping: a guard declared mid-compound
    covers its *later siblings* and dies when the compound closes."""
    import clang.cindex as ci

    args = args_db.get(os.path.abspath(path))
    if args is None:
        args = ["-xc++", "-std=c++20", f"-I{os.path.join(REPO, 'src')}"]
    index = ci.Index.create()
    tu = index.parse(path, args=args)
    lines = read_lines(path)
    findings = []
    mem_layer = is_mem_layer(path)
    env_gateway = is_env_gateway(path)
    version_layer = is_version_layer(path)

    def flag(cursor, rule, detail):
        line = cursor.location.line
        if rule not in allowed_rules(lines, line):
            findings.append(Finding(path, line, rule, detail))

    def callee_name(cursor):
        ref = cursor.referenced
        return (ref.spelling if ref is not None and ref.spelling else cursor.spelling) or ""

    def subtree_has_translate(cursor):
        return any(c.kind == ci.CursorKind.CALL_EXPR and callee_name(c) == "translate"
                   for c in cursor.walk_preorder())

    def tsp(cursor):
        try:
            return cursor.type.spelling or ""
        except Exception:
            return ""

    def check_node(node, spin, ebr):
        kind = node.kind
        if kind == ci.CursorKind.CALL_EXPR:
            name = callee_name(node)
            if name == "getenv" and not env_gateway:
                flag(node, "R2", "route environment reads through oak::env")
            if spin and name in LIBCLANG_ALLOC_CALLS:
                flag(node, "R3", f"'{name}' inside a SpinLock window")
            if ebr and name in LIBCLANG_BLOCKING_CALLS:
                flag(node, "R5", f"'{name}()' while pinning an epoch")
        elif kind == ci.CursorKind.CXX_NEW_EXPR and spin:
            flag(node, "R3", "operator new inside a SpinLock window")
        elif kind == ci.CursorKind.MEMBER_REF_EXPR and not version_layer and \
                node.spelling in ("writeVersion", "dataVersion"):
            flag(node, "R6", "raw writeVersion/dataVersion access — stamps are "
                             "owned by value.hpp")
        elif kind == ci.CursorKind.BINARY_OPERATOR:
            kids = list(node.get_children())
            if ebr and not mem_layer and len(kids) == 2 and \
                    kids[0].kind == ci.CursorKind.MEMBER_REF_EXPR:
                ref = kids[0].referenced
                if ref is not None and ref.kind == ci.CursorKind.FIELD_DECL:
                    if subtree_has_translate(kids[1]) or \
                            any(t in tsp(kids[1]) for t in ("OakRBuffer", "ValueRef")):
                        flag(node, "R1",
                             "slice view stored to a member outlives the guard")
            if not mem_layer and not line_is_assertion(lines, node.location.line):
                toks = [t.spelling for t in node.get_tokens()]
                if ("+" in toks or "-" in toks) and "offset" in toks and \
                        any(c.kind == ci.CursorKind.CALL_EXPR and
                            callee_name(c) == "offset" for c in node.walk_preorder()):
                    flag(node, "R4", "dereference refs via MemoryManager::translate")
            if not version_layer and \
                    not line_is_assertion(lines, node.location.line):
                toks = [t.spelling for t in node.get_tokens()]
                if any(op in toks for op in ("+", "-", "^", "&", "|")) and \
                        any(c.kind == ci.CursorKind.CALL_EXPR and
                            callee_name(c) == "version"
                            for c in node.walk_preorder()):
                    flag(node, "R6", "version stamps are opaque — pass "
                                     "Snapshot::version() to snapshotAt() "
                                     "unmodified")
        elif kind == ci.CursorKind.RETURN_STMT and ebr and not mem_layer:
            if subtree_has_translate(node):
                flag(node, "R1", "raw translated pointer returned past the guard")

    def visit(node, spin, ebr):
        """Returns guard increments this node contributes to its *siblings*
        (a VAR_DECL bubbles up through its DECL_STMT wrapper, but nothing
        escapes a compound statement — that is where guard lifetimes end)."""
        d_spin = d_ebr = 0
        if node.kind == ci.CursorKind.VAR_DECL:
            t = tsp(node)
            if "SpinGuard" in t or ("lock_guard" in t and "SpinLock" in t):
                d_spin = 1
            elif "Ebr::Guard" in t:
                d_ebr = 1
            elif ebr and any(b in t for b in LIBCLANG_BLOCKING_TYPES):
                flag(node, "R5", f"'{t}' acquired while pinning an epoch")
        check_node(node, spin, ebr)
        s, e = spin + d_spin, ebr + d_ebr
        acc_s, acc_e = d_spin, d_ebr
        for child in node.get_children():
            ds, de = visit(child, s, e)
            s += ds
            e += de
            acc_s += ds
            acc_e += de
        if node.kind == ci.CursorKind.COMPOUND_STMT:
            return 0, 0
        return acc_s, acc_e

    for top in tu.cursor.get_children():
        if top.location.file and \
                os.path.abspath(top.location.file.name) == os.path.abspath(path):
            visit(top, 0, 0)

    # R7 is a naming-boundary rule, not a dataflow property — the lexical
    # check is exact, so both engines share it.
    if not mem_layer:
        in_block = False
        for lineno, rawline in enumerate(lines, 1):
            code, in_block = strip_code(rawline, in_block)
            if REF_MAKE_RE.search(code) and "R7" not in allowed_rules(lines, lineno):
                findings.append(Finding(
                    path, lineno, "R7",
                    "only the allocator mints refs — use the slice refs it"
                    " returned (or detail::headerRef for value headers)"))
    return findings


# ---------------------------------------------------------- self-test --

def run_engine(engine, files, build_dir):
    if engine == "textual":
        findings = []
        for f in files:
            findings.extend(textual_scan_file(f))
        return findings
    args_db = load_compile_args(build_dir)
    findings = []
    for f in files:
        findings.extend(libclang_scan_file_scoped(f, args_db))
    return findings


def self_test(engine, build_dir):
    fixture_root = os.path.join(REPO, FIXTURE_DIR)
    fixtures = collect_files([fixture_root], include_fixtures=True)
    fixtures = [f for f in fixtures if os.path.basename(f) != "ts_negative.cpp"
                and os.path.basename(f) != "ts_positive.cpp"]
    if not fixtures:
        print(f"oaklint self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    failures = []
    for f in fixtures:
        lines = read_lines(f)
        expected = set()
        for ln in lines:
            m = EXPECT_RE.search(ln)
            if m:
                expected.add(m.group(1))
        got = run_engine(engine, [f], build_dir)
        got_rules = {x.rule for x in got}
        rel = os.path.relpath(f, REPO)
        if expected:
            missing = expected - got_rules
            extra = got_rules - expected
            if missing:
                failures.append(f"{rel}: expected {sorted(missing)} not flagged")
            if extra:
                failures.append(f"{rel}: unexpected findings {sorted(extra)}: "
                                + "; ".join(str(x) for x in got if x.rule in extra))
        else:  # clean fixture: must produce nothing
            if got:
                failures.append(f"{rel}: expected clean, got "
                                + "; ".join(str(x) for x in got))

    tree_findings = run_engine(engine, collect_files(DEFAULT_ROOTS), build_dir)
    for x in tree_findings:
        failures.append(f"real tree not clean: {x}")

    n_expectations = sum(1 for f in fixtures if any(EXPECT_RE.search(l) for l in read_lines(f)))
    if failures:
        print(f"oaklint self-test ({engine}): FAIL", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(f"oaklint self-test ({engine}): PASS — {n_expectations} violating "
          f"fixtures flagged, clean fixture quiet, real tree clean "
          f"({len(collect_files(DEFAULT_ROOTS))} files)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help=f"files/dirs to scan (default: {DEFAULT_ROOTS})")
    ap.add_argument("--engine", choices=["auto", "libclang", "textual"], default="auto")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"),
                    help="where to look for compile_commands.json")
    ap.add_argument("--self-test", action="store_true",
                    help="verify fixtures are flagged and the real tree is clean")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "libclang" if libclang_available() else "textual"
        if engine == "textual":
            print("oaklint: libclang unavailable, using textual engine",
                  file=sys.stderr)
    elif engine == "libclang" and not libclang_available():
        print("oaklint: --engine libclang requested but python3 clang bindings "
              "are not importable", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(engine, args.build_dir)

    files = collect_files(args.paths or DEFAULT_ROOTS)
    findings = run_engine(engine, files, args.build_dir)
    for x in findings:
        print(x)
    if findings:
        print(f"oaklint ({engine}): {len(findings)} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"oaklint ({engine}): clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
