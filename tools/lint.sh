#!/usr/bin/env bash
# Lint driver for the oakcpp tree: textual protocol greps (always run), then
# clang-tidy (.clang-tidy holds the profile) when LLVM is installed.
#
#   tools/lint.sh [build-dir]
#
# clang-tidy needs a compile_commands.json; pass the build dir (default:
# build — every preset exports the database).  The script exits 0 with a
# notice when clang-tidy is missing, so it is safe to call unconditionally
# from CI shells that lack LLVM.  The deeper protocol rules (EBR/SpinLock
# scope analysis) live in tools/oaklint.py.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# --------------------------------------------------------- textual rules --
# Table-driven greps: no toolchain needed, so these gate every CI shell.
# Each rule is  name | extended-regex | remedy | pathspecs... ; a match
# fails the build with the remedy printed.  Fixtures are excluded
# everywhere — they exist to violate the rules.
FIX=':!tests/lint_fixtures'

run_rule() {
  local name="$1" regex="$2" remedy="$3"
  shift 3
  if git grep -nE "${regex}" -- "$@" "${FIX}"; then
    echo "lint.sh: ${name} violation (shown above)" >&2
    echo "  ${remedy}" >&2
    exit 1
  fi
  echo "lint.sh: ${name}: clean"
}

# OOM signalling must go through the typed hierarchy in common/error.hpp
# (OffHeapOutOfMemory / ManagedOutOfMemory) — a raw std::bad_alloc is
# indistinguishable at catch sites and breaks the tryPut/tryCompute
# degraded-path classification.
run_rule "bad_alloc" \
  'throw std::bad_alloc' \
  "throw OffHeapOutOfMemory or ManagedOutOfMemory from common/error.hpp instead." \
  'src/' ':!src/common/error.hpp'

# Environment reads go through the oak::env gateway (typed parsing, single
# audit point).  This grep is the no-toolchain fallback for oaklint rule R2.
run_rule "raw-getenv" \
  '(^|[^A-Za-z0-9_:.])getenv[[:space:]]*\(' \
  "route environment reads through oak::env (src/common/env.hpp)." \
  'src/' 'tests/' 'bench/' ':!src/common/env.hpp'

# SpinLock holds must use oak::SpinGuard: std::lock_guard<SpinLock> carries
# no capability annotations, so Clang's analysis cannot see the acquire.
run_rule "spinlock-guard" \
  'std::lock_guard<[[:space:]]*(oak::)?SpinLock' \
  "use oak::SpinGuard (src/common/spin.hpp) so -Wthread-safety sees the hold." \
  'src/' 'tests/' 'bench/'

# Library mutexes must be the annotated wrappers (oak::Mutex/SharedMutex,
# src/common/mutex.hpp); raw std types are invisible to the analysis.
# Tests may keep std::mutex for their own scaffolding.
run_rule "raw-std-mutex" \
  'std::(shared_)?mutex[[:space:]]+[A-Za-z_]' \
  "use oak::Mutex / oak::SharedMutex (src/common/mutex.hpp) so the capability contract stays checkable." \
  'src/' ':!src/common/mutex.hpp'

# ------------------------------------------------------------ clang-tidy --
TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing; configure with" >&2
  echo "  cmake -B ${BUILD_DIR} -S .   (all presets export the database)" >&2
  exit 1
fi

# Library, test and bench .cpp files all compile standalone; header-only
# templates are covered through them via HeaderFilterRegex in .clang-tidy.
mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' |
  grep -v '^tests/lint_fixtures/')

echo "lint.sh: running ${TIDY} on ${#SOURCES[@]} sources"
"${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
echo "lint.sh: clean"
