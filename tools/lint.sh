#!/usr/bin/env bash
# clang-tidy driver for the oakcpp tree (.clang-tidy holds the profile).
#
#   tools/lint.sh [build-dir]
#
# Needs a compile_commands.json; pass the build dir (default: build).
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call unconditionally from CI shells that lack LLVM.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# Textual checks first: these need no toolchain, so they gate every CI shell.
#
# OOM signalling must go through the typed hierarchy in common/error.hpp
# (OffHeapOutOfMemory / ManagedOutOfMemory) — a raw std::bad_alloc is
# indistinguishable at catch sites and breaks the tryPut/tryCompute
# degraded-path classification.
if git grep -n 'throw std::bad_alloc' -- 'src/' ':!src/common/error.hpp'; then
  echo "lint.sh: raw 'throw std::bad_alloc' in src/ (shown above);" >&2
  echo "  throw OffHeapOutOfMemory or ManagedOutOfMemory from common/error.hpp instead." >&2
  exit 1
fi
echo "lint.sh: no raw std::bad_alloc throws outside common/error.hpp"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing; configure with" >&2
  echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

# The library .cpp files compile standalone; header-only templates are
# covered through them via HeaderFilterRegex in .clang-tidy.
mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp')

echo "lint.sh: running ${TIDY} on ${#SOURCES[@]} sources"
"${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
echo "lint.sh: clean"
